#include "sorel/linalg/sparse.hpp"

#include <algorithm>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::linalg {

SparseMatrix::Builder& SparseMatrix::Builder::add(std::size_t row, std::size_t col,
                                                  double value) {
  if (row >= rows_ || col >= cols_) {
    throw InvalidArgument("sparse builder entry (" + std::to_string(row) + ", " +
                          std::to_string(col) + ") out of range for " +
                          std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  entries_.push_back({row, col, value});
  return *this;
}

SparseMatrix SparseMatrix::Builder::build() && {
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);

  // Merge duplicates, drop zeros.
  std::size_t i = 0;
  while (i < entries_.size()) {
    const std::size_t row = entries_[i].row;
    const std::size_t col = entries_[i].col;
    double value = 0.0;
    while (i < entries_.size() && entries_[i].row == row && entries_[i].col == col) {
      value += entries_[i].value;
      ++i;
    }
    if (value != 0.0) {
      m.col_idx_.push_back(col);
      m.values_.push_back(value);
      ++m.row_ptr_[row + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense, double drop_tolerance) {
  Builder b(dense.rows(), dense.cols());
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (v != 0.0 && std::abs(v) > drop_tolerance) b.add(i, j, v);
    }
  }
  return std::move(b).build();
}

Matrix SparseMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw InvalidArgument("sparse multiply: dimension mismatch (" +
                          std::to_string(cols_) + " vs " + std::to_string(x.size()) +
                          ")");
  }
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Vector SparseMatrix::multiply_transpose(const Vector& x) const {
  if (x.size() != rows_) {
    throw InvalidArgument("sparse multiply_transpose: dimension mismatch (" +
                          std::to_string(rows_) + " vs " + std::to_string(x.size()) +
                          ")");
  }
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += values_[k] * xr;
    }
  }
  return y;
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw InvalidArgument("sparse at(" + std::to_string(row) + ", " +
                          std::to_string(col) + ") out of range");
  }
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

SparseMatrix::RowView SparseMatrix::row(std::size_t r) const noexcept {
  const std::size_t begin = row_ptr_[r];
  return {col_idx_.data() + begin, values_.data() + begin, row_ptr_[r + 1] - begin};
}

}  // namespace sorel::linalg
