#include "sorel/linalg/vector.hpp"

#include <cmath>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::linalg {

namespace {

void check_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw InvalidArgument(std::string("vector ") + op + ": size mismatch (" +
                          std::to_string(a.size()) + " vs " +
                          std::to_string(b.size()) + ")");
  }
}

}  // namespace

double& Vector::at(std::size_t i) {
  if (i >= size()) {
    throw InvalidArgument("vector index " + std::to_string(i) +
                          " out of range [0, " + std::to_string(size()) + ")");
  }
  return data_[i];
}

double Vector::at(std::size_t i) const {
  return const_cast<Vector*>(this)->at(i);
}

Vector& Vector::operator+=(const Vector& rhs) {
  check_same_size(*this, rhs, "addition");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  check_same_size(*this, rhs, "subtraction");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::operator/=(double s) {
  if (s == 0.0) throw InvalidArgument("vector division by zero");
  for (double& x : data_) x /= s;
  return *this;
}

double Vector::dot(const Vector& rhs) const {
  check_same_size(*this, rhs, "dot product");
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * rhs.data_[i];
  return acc;
}

double Vector::norm2() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Vector::norm_inf() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

double Vector::sum() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

}  // namespace sorel::linalg
