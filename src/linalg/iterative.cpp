#include "sorel/linalg/iterative.hpp"

#include <cmath>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::linalg {

namespace {

void check_system(const SparseMatrix& a, const Vector& b, const char* name) {
  if (a.rows() != a.cols()) {
    throw InvalidArgument(std::string(name) + ": matrix must be square");
  }
  if (a.rows() != b.size()) {
    throw InvalidArgument(std::string(name) + ": rhs length " +
                          std::to_string(b.size()) + " != dimension " +
                          std::to_string(a.rows()));
  }
}

/// Extract the diagonal of a; throws if any entry is (numerically) zero.
Vector extract_diagonal(const SparseMatrix& a, const char* name) {
  const std::size_t n = a.rows();
  Vector diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a.at(i, i);
    if (d == 0.0) {
      throw NumericError(std::string(name) + ": zero diagonal at row " +
                         std::to_string(i));
    }
    diag[i] = d;
  }
  return diag;
}

}  // namespace

IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                       IterativeOptions options) {
  check_system(a, b, "jacobi");
  const std::size_t n = a.rows();
  const Vector diag = extract_diagonal(a, "jacobi");

  IterativeResult result;
  result.x = Vector(n);
  Vector next(n);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.meter != nullptr) options.meter->poll();
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      const auto row = a.row(i);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.cols[k] != i) acc -= row.values[k] * result.x[row.cols[k]];
      }
      next[i] = acc / diag[i];
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      delta = std::max(delta, std::fabs(next[i] - result.x[i]));
    }
    std::swap(result.x, next);
    result.iterations = iter + 1;
    result.update_norm = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

IterativeResult gauss_seidel(const SparseMatrix& a, const Vector& b,
                             IterativeOptions options) {
  check_system(a, b, "gauss_seidel");
  const std::size_t n = a.rows();
  const Vector diag = extract_diagonal(a, "gauss_seidel");

  IterativeResult result;
  result.x = Vector(n);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.meter != nullptr) options.meter->poll();
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      const auto row = a.row(i);
      for (std::size_t k = 0; k < row.size; ++k) {
        if (row.cols[k] != i) acc -= row.values[k] * result.x[row.cols[k]];
      }
      const double updated = acc / diag[i];
      delta = std::max(delta, std::fabs(updated - result.x[i]));
      result.x[i] = updated;
    }
    result.iterations = iter + 1;
    result.update_norm = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

IterativeResult fixed_point_iteration(const SparseMatrix& q, const Vector& b,
                                      IterativeOptions options) {
  check_system(q, b, "fixed_point_iteration");
  const std::size_t n = q.rows();

  IterativeResult result;
  result.x = Vector(n);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (options.meter != nullptr) options.meter->poll();
    Vector next = q.multiply(result.x);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] += b[i];
      delta = std::max(delta, std::fabs(next[i] - result.x[i]));
    }
    result.x = std::move(next);
    result.iterations = iter + 1;
    result.update_norm = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace sorel::linalg
