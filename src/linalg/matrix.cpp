#include "sorel/linalg/matrix.hpp"

#include <cmath>
#include <cstdio>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::linalg {

namespace {

void check_same_shape(const Matrix& a, const Matrix& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw InvalidArgument(std::string("matrix ") + op + ": shape mismatch (" +
                          std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                          " vs " + std::to_string(b.rows()) + "x" +
                          std::to_string(b.cols()) + ")");
  }
}

}  // namespace

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw InvalidArgument("matrix initializer rows have unequal lengths");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw InvalidArgument("matrix index (" + std::to_string(r) + ", " +
                          std::to_string(c) + ") out of range for " +
                          std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  return const_cast<Matrix*>(this)->at(r, c);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "addition");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check_same_shape(*this, rhs, "subtraction");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw InvalidArgument("matrix product: inner dimensions differ (" +
                          std::to_string(cols_) + " vs " +
                          std::to_string(rhs.rows_) + ")");
  }
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& x) const {
  if (cols_ != x.size()) {
    throw InvalidArgument("matrix-vector product: dimension mismatch (" +
                          std::to_string(cols_) + " vs " +
                          std::to_string(x.size()) + ")");
  }
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Vector Matrix::row(std::size_t r) const {
  if (r >= rows_) {
    throw InvalidArgument("row index " + std::to_string(r) + " out of range");
  }
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(r, j);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) {
    throw InvalidArgument("column index " + std::to_string(c) + " out of range");
  }
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  if (r >= rows_) {
    throw InvalidArgument("row index " + std::to_string(r) + " out of range");
  }
  if (v.size() != cols_) {
    throw InvalidArgument("set_row: vector length " + std::to_string(v.size()) +
                          " != column count " + std::to_string(cols_));
  }
  for (std::size_t j = 0; j < cols_; ++j) (*this)(r, j) = v[j];
}

double Matrix::norm_max() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

double Matrix::norm_inf() const noexcept {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) row_sum += std::fabs((*this)(i, j));
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::distance(const Matrix& rhs) const {
  check_same_shape(*this, rhs, "distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - rhs.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < rows_; ++i) {
    out += "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      std::snprintf(buf, sizeof buf, "%.*g", precision, (*this)(i, j));
      if (j != 0) out += ", ";
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace sorel::linalg
