#include "sorel/linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::linalg {

LuDecomposition LuDecomposition::compute(const Matrix& a, double pivot_tolerance) {
  if (!a.square()) {
    throw InvalidArgument("LU decomposition requires a square matrix, got " +
                          std::to_string(a.rows()) + "x" + std::to_string(a.cols()));
  }
  const std::size_t n = a.rows();
  LuDecomposition d;
  d.lu_ = a;
  d.perm_.resize(n);
  std::iota(d.perm_.begin(), d.perm_.end(), std::size_t{0});

  Matrix& lu = d.lu_;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| in column k to the diagonal.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag <= pivot_tolerance) {
      d.singular_ = true;
      continue;  // keep factoring remaining columns for determinant() = 0
    }
    if (pivot_row != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot_row, j));
      std::swap(d.perm_[k], d.perm_[pivot_row]);
      d.sign_ = -d.sign_;
    }
    const double pivot = lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) / pivot;
      lu(i, k) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return d;
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = dimension();
  if (b.size() != n) {
    throw InvalidArgument("LU solve: rhs length " + std::to_string(b.size()) +
                          " != dimension " + std::to_string(n));
  }
  if (singular_) {
    throw NumericError("LU solve: matrix is singular to working precision");
  }
  // Forward substitution with permuted rhs: L y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution: U x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  const std::size_t n = dimension();
  if (b.rows() != n) {
    throw InvalidArgument("LU solve: rhs has " + std::to_string(b.rows()) +
                          " rows, expected " + std::to_string(n));
  }
  Matrix x(n, b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vector xc = solve(b.col(c));
    for (std::size_t i = 0; i < n; ++i) x(i, c) = xc[i];
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) return 0.0;
  double det = sign_;
  for (std::size_t i = 0; i < dimension(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition::compute(a).solve(b);
}

Matrix inverse(const Matrix& a) {
  return LuDecomposition::compute(a).solve(Matrix::identity(a.rows()));
}

}  // namespace sorel::linalg
