#include "sorel/serve/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "sorel/sched/scheduler.hpp"
#include "sorel/util/error.hpp"

namespace sorel::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Blocking full write with MSG_NOSIGNAL (a vanished client must yield an
/// error return, not SIGPIPE). Returns false on any failure.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

}  // namespace

/// One client connection: its socket, its reader thread, its response
/// sequencer, and the cancel token tripped when the client disconnects.
struct TcpListener::Connection {
  int fd = -1;
  std::thread reader;
  std::shared_ptr<guard::CancelToken> cancel =
      std::make_shared<guard::CancelToken>();
  std::unique_ptr<ResponseSequencer> sequencer;
  std::atomic<bool> writable{true};
  std::atomic<bool> done{false};
};

TcpListener::TcpListener(Server& server, const std::string& host,
                         std::uint16_t port)
    : server_(server) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("serve: not an IPv4 address: '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    throw_errno("serve: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() { stop(); }

void TcpListener::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpListener::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !server_.shutdown_requested()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop(), or a fatal accept error
    }
    if (stopping_.load(std::memory_order_acquire) ||
        server_.shutdown_requested()) {
      ::close(fd);
      break;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    // Raw pointer on purpose: the sequencer is owned by the connection, so
    // a shared_ptr here would be a reference cycle that leaks both.
    Connection* raw = connection.get();
    connection->sequencer = std::make_unique<ResponseSequencer>(
        [raw](const std::string& line) {
          if (!raw->writable.load(std::memory_order_relaxed)) return;
          std::string wire = line;
          wire += '\n';
          if (!send_all(raw->fd, wire.data(), wire.size())) {
            // Client gone: discard this and every later response, and stop
            // the in-flight requests at their next guard checkpoint.
            raw->writable.store(false, std::memory_order_relaxed);
            raw->cancel->cancel();
          }
        });
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { serve_connection(connection); });
    reap_finished();
  }
}

void TcpListener::serve_connection(std::shared_ptr<Connection> connection) {
  sched::Scheduler& scheduler = sched::Scheduler::global();
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !server_.shutdown_requested()) {
    const ssize_t received = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) {
      open = false;  // disconnect (or stop() shut the socket down)
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(received));
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         newline != std::string::npos; newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::uint64_t ticket = connection->sequencer->next_ticket();
      Server* server = &server_;
      scheduler.submit([server, connection, ticket, line] {
        connection->sequencer->emit(
            ticket, server->handle_line(line, connection->cancel));
      });
    }
    buffer.erase(0, start);
  }
  // Disconnect: cancel whatever is still in flight for this client, then
  // wait for those requests to finish (their responses are discarded by the
  // unwritable sink) so the connection can be reaped safely. The fd is only
  // shut down here, never closed — close() happens after join (reap/stop),
  // so stop() can never race a reader on a recycled descriptor.
  connection->cancel->cancel();
  connection->sequencer->drain();
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

void TcpListener::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpListener::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second stop(): the first one already tore everything down, but the
    // accept thread may still need joining (e.g. destructor after stop()).
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    // Unblock the reader's recv; it drains its in-flight requests (zero
    // dropped) and marks itself done.
    ::shutdown(connection->fd, SHUT_RD);
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
}

}  // namespace sorel::serve
