#include "sorel/serve/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "sorel/resil/chaos.hpp"
#include "sorel/resil/token_bucket.hpp"
#include "sorel/sched/scheduler.hpp"
#include "sorel/util/error.hpp"

namespace sorel::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

/// Blocking full write with MSG_NOSIGNAL (a vanished client must yield an
/// error return, not SIGPIPE). Returns false on any failure.
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// Transient accept failures: resource exhaustion (fd limits, kernel
/// buffers) and connections that died in the backlog. All of them clear on
/// their own; none justify killing the listener.
bool transient_accept_error(int error) noexcept {
  return error == EMFILE || error == ENFILE || error == ECONNABORTED ||
         error == EAGAIN || error == EWOULDBLOCK || error == ENOBUFS ||
         error == ENOMEM || error == EPROTO;
}

}  // namespace

/// One client connection: its socket, its reader thread, its response
/// sequencer, its rate-limit bucket, and the cancel token tripped when the
/// client disconnects.
struct TcpListener::Connection {
  explicit Connection(const Server::Options& options)
      : bucket(options.rate_limit_capacity,
               options.rate_limit_refill_per_sec) {}

  int fd = -1;
  std::thread reader;
  std::shared_ptr<guard::CancelToken> cancel =
      std::make_shared<guard::CancelToken>();
  std::unique_ptr<ResponseSequencer> sequencer;
  resil::TokenBucket bucket;
  std::atomic<bool> writable{true};
  std::atomic<bool> done{false};
};

TcpListener::TcpListener(Server& server, const std::string& host,
                         std::uint16_t port)
    : server_(server) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw InvalidArgument("serve: not an IPv4 address: '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind " + host + ":" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_size) != 0) {
    throw_errno("serve: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::TcpListener(Server& server, const std::string& unix_path)
    : server_(server), unix_path_(unix_path) {
  sockaddr_un address{};
  if (unix_path.empty() || unix_path.size() >= sizeof(address.sun_path)) {
    throw InvalidArgument("serve: unix socket path must be 1.." +
                          std::to_string(sizeof(address.sun_path) - 1) +
                          " bytes: '" + unix_path + "'");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, unix_path.c_str(), unix_path.size() + 1);
  // A socket file left by a crashed daemon would make bind fail forever;
  // a *live* daemon still holds the listening socket, so its clients are
  // unaffected by the unlink — it is strictly the crash-recovery path.
  ::unlink(unix_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind " + unix_path);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }
}

TcpListener::~TcpListener() { stop(); }

void TcpListener::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpListener::accept_loop() {
  // Exponential backoff for transient accept failures: an fd-exhaustion
  // storm must not spin the loop, and EMFILE typically clears as soon as a
  // connection is reaped. Reset on every successful accept.
  int backoff_ms = 1;
  constexpr int kMaxBackoffMs = 100;
  while (!stopping_.load(std::memory_order_acquire) &&
         !server_.shutdown_requested()) {
    int fd = -1;
    if (resil::chaos_fire(resil::Site::TcpAccept)) {
      errno = ECONNABORTED;  // synthesized transient accept failure
    } else {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire) ||
          server_.shutdown_requested()) {
        break;  // stop() closed the listening socket under us
      }
      if (transient_accept_error(errno)) {
        reap_finished();  // an EMFILE storm clears fastest by freeing fds
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
        continue;
      }
      break;  // fatal accept error (EBADF, EINVAL, ...): listener is gone
    }
    backoff_ms = 1;
    if (stopping_.load(std::memory_order_acquire) ||
        server_.shutdown_requested()) {
      ::close(fd);
      break;
    }
    auto connection = std::make_shared<Connection>(server_.options());
    connection->fd = fd;
    // Raw pointer on purpose: the sequencer is owned by the connection, so
    // a shared_ptr here would be a reference cycle that leaks both.
    Connection* raw = connection.get();
    connection->sequencer = std::make_unique<ResponseSequencer>(
        [raw](const std::string& line) {
          if (!raw->writable.load(std::memory_order_relaxed)) return;
          std::string wire = line;
          wire += '\n';
          // Chaos hook: a dropped response write — the client observes a
          // half-dead connection (request sent, response never arrives),
          // the exact failure the resil::Client's timeout+reconnect+retry
          // path exists for.
          const bool dropped = resil::chaos_fire(resil::Site::TcpSend);
          if (dropped || !send_all(raw->fd, wire.data(), wire.size())) {
            // Client gone (or chaos says so): discard this and every later
            // response, stop the in-flight requests at their next guard
            // checkpoint, and shut the socket both ways so the client and
            // the reader notice promptly instead of waiting on a timeout.
            raw->writable.store(false, std::memory_order_relaxed);
            raw->cancel->cancel();
            ::shutdown(raw->fd, SHUT_RDWR);
          }
        });
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(connection);
    }
    connection->reader =
        std::thread([this, connection] { serve_connection(connection); });
    reap_finished();
  }
}

void TcpListener::serve_connection(std::shared_ptr<Connection> connection) {
  sched::Scheduler& scheduler = sched::Scheduler::global();
  const std::size_t max_line_bytes = server_.options().max_line_bytes;
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !server_.shutdown_requested()) {
    const ssize_t received = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) {
      open = false;  // disconnect (or stop() shut the socket down)
      break;
    }
    // Chaos hook: a simulated connection reset mid-stream — exercises the
    // same path as a real client vanishing with requests in flight.
    if (resil::chaos_fire(resil::Site::TcpRecv)) {
      open = false;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(received));
    std::size_t start = 0;
    for (std::size_t newline = buffer.find('\n', start);
         newline != std::string::npos; newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::uint64_t ticket = connection->sequencer->next_ticket();
      Server* server = &server_;
      if (!server->try_admit()) {
        // Bounded admission: shed deterministically instead of queueing
        // without limit. The shed response takes the request's sequencer
        // slot so pipelined responses stay in request order.
        connection->sequencer->emit(ticket, server->overloaded_response(line));
        continue;
      }
      scheduler.submit([server, connection, ticket, line] {
        std::string response =
            server->handle_line(line, connection->cancel, &connection->bucket);
        server->release_admission();
        connection->sequencer->emit(ticket, std::move(response));
      });
    }
    buffer.erase(0, start);
    if (buffer.size() > max_line_bytes) {
      // A client streaming bytes with no newline would otherwise grow this
      // buffer without bound. One structured parse_error response, then
      // disconnect — the partial line can never become a valid request.
      const std::uint64_t ticket = connection->sequencer->next_ticket();
      json::Object refusal = make_response(std::nullopt, false);
      refusal["error"] = "parse_error";
      refusal["message"] =
          "request line exceeds " + std::to_string(max_line_bytes) +
          " bytes without a newline";
      connection->sequencer->emit(ticket, dump_response(std::move(refusal)));
      // Let earlier pipelined requests finish and flush normally — only
      // the unterminated line is refused — then fall into teardown.
      connection->sequencer->drain();
      open = false;
      break;
    }
  }
  // Disconnect: cancel whatever is still in flight for this client, then
  // wait for those requests to finish (their responses are discarded by the
  // unwritable sink) so the connection can be reaped safely. The fd is only
  // shut down here, never closed — close() happens after join (reap/stop),
  // so stop() can never race a reader on a recycled descriptor.
  connection->cancel->cancel();
  connection->sequencer->drain();
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

void TcpListener::reap_finished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpListener::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // Second stop(): the first one already tore everything down, but the
    // accept thread may still need joining (e.g. destructor after stop()).
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    // Unblock the reader's recv; it drains its in-flight requests (zero
    // dropped) and marks itself done.
    ::shutdown(connection->fd, SHUT_RD);
    if (connection->reader.joinable()) connection->reader.join();
    ::close(connection->fd);
  }
}

}  // namespace sorel::serve
