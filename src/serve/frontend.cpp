#include <utility>

#include "sorel/sched/scheduler.hpp"
#include "sorel/serve/server.hpp"

namespace sorel::serve {

ResponseSequencer::ResponseSequencer(
    std::function<void(const std::string&)> sink)
    : sink_(std::move(sink)) {}

std::uint64_t ResponseSequencer::next_ticket() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_ticket_++;
}

void ResponseSequencer::emit(std::uint64_t ticket, std::string response) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.emplace(ticket, std::move(response));
  // Flush every consecutive ready response. The sink runs under the lock:
  // responses of one client never interleave and always leave in request
  // order, whatever order the workers finished in.
  while (!pending_.empty() && pending_.begin()->first == next_flush_) {
    sink_(pending_.begin()->second);
    pending_.erase(pending_.begin());
    ++next_flush_;
  }
  ready_.notify_all();
}

void ResponseSequencer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return next_flush_ == next_ticket_; });
}

std::size_t run_stdio(Server& server, std::istream& in, std::ostream& out,
                      std::shared_ptr<const guard::CancelToken> cancel) {
  ResponseSequencer sequencer([&out](const std::string& line) {
    out << line << '\n';
    out.flush();  // clients pipeline against a live daemon; never buffer
  });

  sched::Scheduler& scheduler = sched::Scheduler::global();
  // One stdio run is one client: it gets one rate-limit bucket (unlimited
  // when rate limiting is off) and competes for admission slots like any
  // TCP connection would.
  resil::TokenBucket bucket(server.options().rate_limit_capacity,
                            server.options().rate_limit_refill_per_sec);
  std::string line;
  std::size_t requests = 0;
  while (!server.shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive no-ops
    const std::uint64_t ticket = sequencer.next_ticket();
    ++requests;
    if (!server.try_admit()) {
      sequencer.emit(ticket, server.overloaded_response(line));
      continue;
    }
    scheduler.submit([&server, &sequencer, &bucket, ticket, line, cancel] {
      std::string response = server.handle_line(line, cancel, &bucket);
      server.release_admission();
      sequencer.emit(ticket, std::move(response));
    });
  }
  // Everything read before EOF / shutdown still gets its response — the
  // zero-dropped-requests half of the shutdown contract.
  sequencer.drain();
  return requests;
}

}  // namespace sorel::serve
