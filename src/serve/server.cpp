#include "sorel/serve/server.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <new>
#include <optional>
#include <utility>

#include "sorel/dist/dist.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/faults/campaign_json.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/guard/budget_json.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/runtime/thread_pool.hpp"
#include "sorel/sched/scheduler.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/util/error.hpp"

namespace sorel::serve {

namespace {

/// The protocol's op vocabulary, in the order the "ops" stats object lists
/// it (every op always present, so the key set is deterministic).
constexpr std::array<const char*, 11> kOpNames = {
    "batch",    "eval",     "health",   "inject", "load_spec",
    "set_attributes", "shard", "shutdown", "snapshot", "stats",  "version",
};

/// Bump `maximum` to at least `value` (relaxed CAS loop; high-water marks
/// only ever grow).
void raise_max(std::atomic<std::uint64_t>& maximum, std::uint64_t value) {
  std::uint64_t seen = maximum.load(std::memory_order_relaxed);
  while (seen < value &&
         !maximum.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed)) {
  }
}

/// Parse the optional request-level "budget" object overlaid on the server
/// default for this request only.
guard::Budget effective_budget(const guard::Budget& base,
                               const json::Value& document) {
  if (!document.contains("budget")) return base;
  return base.overlaid_with(
      guard::budget_from_json(document.at("budget"), "request budget"));
}

std::vector<double> parse_args_field(const json::Value& document) {
  std::vector<double> args;
  if (!document.contains("args")) return args;
  for (const json::Value& value : document.at("args").as_array()) {
    args.push_back(value.as_number());
  }
  return args;
}

std::map<std::string, double> parse_number_map(const json::Value& value) {
  std::map<std::string, double> out;
  for (const auto& [name, entry] : value.as_object()) {
    out[name] = entry.as_number();
  }
  return out;
}

/// The per-job / per-scenario guard fields of a structured error slot —
/// deliberately without elapsed_ms (responses are wall-clock-free).
void append_guard_fields(json::Object& line, const std::string& limit,
                         std::uint64_t evaluations_done,
                         std::uint64_t states_expanded) {
  if (!limit.empty()) line["limit"] = limit;
  line["evaluations_done"] = evaluations_done;
  line["states_expanded"] = states_expanded;
}

}  // namespace

/// One warm evaluation session plus the bookkeeping that keeps pooled reuse
/// indistinguishable from a fresh session: a pfail-override that survived a
/// failed request is scrubbed before the session goes back to the pool.
struct PooledSession {
  core::EvalSession session;
  bool pfail_dirty = false;

  PooledSession(const core::Assembly& assembly,
                core::EvalSession::Options options)
      : session(assembly, std::move(options)) {}
};

/// Everything derived from one loaded spec, swapped atomically as a unit by
/// load_spec / set_attributes. In-flight requests pin their state via
/// shared_ptr; the idle-session pool belongs to the state so sessions never
/// outlive the assembly they reference.
struct Server::SpecState {
  core::Assembly assembly;
  std::shared_ptr<memo::SharedMemo> memo;  // null when sharing is off
  std::size_t services = 0;
  std::uint64_t snap_key = 0;  // snap::spec_key(assembly); 0 when memo off
  /// The spec's optional "selection" array (empty when none): shard requests
  /// evaluate sub-ranges of this space. Carried across set_attributes swaps.
  std::vector<core::SelectionPoint> selection;

  std::mutex pool_mutex;
  std::vector<std::unique_ptr<PooledSession>> idle;

  explicit SpecState(core::Assembly loaded) : assembly(std::move(loaded)) {
    services = assembly.service_names().size();
  }
};

/// RAII checkout of a warm session from the state's pool (creating one when
/// the pool is empty — concurrency is bounded by the front ends' worker
/// count, so the pool converges on one session per worker). The destructor
/// scrubs request residue, folds the session's engine-counter deltas into
/// the server totals, and returns the session to the pool.
class Server::SessionLease {
 public:
  SessionLease(Server& server, std::shared_ptr<SpecState> state)
      : server_(server), state_(std::move(state)) {
    {
      std::lock_guard<std::mutex> lock(state_->pool_mutex);
      if (!state_->idle.empty()) {
        pooled_ = std::move(state_->idle.back());
        state_->idle.pop_back();
      }
    }
    if (pooled_ == nullptr) {
      core::EvalSession::Options session_options;
      session_options.engine = server_.options_.engine;
      pooled_ = std::make_unique<PooledSession>(state_->assembly,
                                                std::move(session_options));
      if (state_->memo) pooled_->session.attach_shared_memo(state_->memo);
    }
    before_ = pooled_->session.stats();
  }

  ~SessionLease() {
    if (pooled_->pfail_dirty) {
      pooled_->session.set_pfail_overrides({});
      pooled_->pfail_dirty = false;
    }
    // Detach the request's budget and cancel token — a pooled session must
    // never observe a dead client's token.
    pooled_->session.set_budget(guard::Budget{}, nullptr);
    const core::ReliabilityEngine::Stats& after = pooled_->session.stats();
    server_.engine_evaluations_.fetch_add(
        after.evaluations - before_.evaluations, std::memory_order_relaxed);
    server_.engine_memo_hits_.fetch_add(after.memo_hits - before_.memo_hits,
                                        std::memory_order_relaxed);
    server_.shared_hits_.fetch_add(after.shared_hits - before_.shared_hits,
                                   std::memory_order_relaxed);
    // fixpoint_sccs is a per-query observation, not a cumulative counter:
    // charge the request's last query as-is (0 for acyclic specs).
    server_.fixpoint_sccs_.fetch_add(after.fixpoint_sccs,
                                     std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state_->pool_mutex);
    state_->idle.push_back(std::move(pooled_));
  }

  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  core::EvalSession& session() noexcept { return pooled_->session; }
  void mark_pfail_dirty() noexcept { pooled_->pfail_dirty = true; }

 private:
  Server& server_;
  std::shared_ptr<SpecState> state_;
  std::unique_ptr<PooledSession> pooled_;
  core::ReliabilityEngine::Stats before_;
};

Server::Server() : Server(Options{}) {}

Server::Server(Options options)
    : options_(std::move(options)), op_counts_(kOpNames.size()) {
  maybe_start_autosave();
}

Server::Server(const json::Value& spec_document, Options options)
    : options_(std::move(options)), op_counts_(kOpNames.size()) {
  load_spec(spec_document);
  maybe_start_autosave();
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(autosave_mutex_);
    autosave_stop_ = true;
  }
  autosave_cv_.notify_all();
  if (autosave_thread_.joinable()) autosave_thread_.join();
  // One final snapshot so a clean shutdown + restart resumes warm (a failed
  // save degrades to whatever the last good snapshot was).
  if (!options_.snapshot_path.empty()) save_snapshot_now();
}

void Server::count_op(const std::string& op) noexcept {
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    if (op == kOpNames[i]) {
      op_counts_[i].fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void Server::maybe_start_autosave() {
  if (options_.snapshot_path.empty() || options_.snapshot_interval_ms == 0) {
    return;
  }
  autosave_thread_ = std::thread([this] { autosave_loop(); });
}

void Server::autosave_loop() {
  const auto interval =
      std::chrono::milliseconds(options_.snapshot_interval_ms);
  std::unique_lock<std::mutex> lock(autosave_mutex_);
  while (!autosave_stop_) {
    autosave_cv_.wait_for(lock, interval);
    if (autosave_stop_) break;
    lock.unlock();
    save_snapshot_now();
    lock.lock();
  }
}

bool Server::save_snapshot_now() {
  std::shared_ptr<SpecState> state = current_state();
  if (state == nullptr || state->memo == nullptr ||
      options_.snapshot_path.empty()) {
    return false;
  }
  // export_entries() pins the table's current epoch, so the image is a
  // consistent view even while requests keep publishing and even if a
  // load_spec swap lands mid-save (the swap bumps the *old* table's epoch;
  // this save still writes the coherent pre-swap view it pinned).
  const snap::SaveResult result = snap::save_snapshot(
      options_.snapshot_path, *state->memo, state->snap_key);
  if (result.ok()) {
    snapshot_saves_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot_save_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return result.ok();
}

std::shared_ptr<Server::SpecState> Server::current_state() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return state_;
}

std::shared_ptr<Server::SpecState> Server::require_spec() const {
  std::shared_ptr<SpecState> state = current_state();
  if (state == nullptr) {
    throw ModelError("no spec loaded (send a load_spec request first)");
  }
  return state;
}

void Server::swap_state(std::shared_ptr<SpecState> next) {
  std::shared_ptr<SpecState> old;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    old = std::move(state_);
    state_ = std::move(next);
  }
  // In-flight requests keep evaluating against their pinned snapshot; the
  // epoch bump just stops stragglers publishing into a table no future
  // request will read.
  if (old != nullptr && old->memo != nullptr) old->memo->bump_epoch();
  spec_loads_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Server::load_spec(const json::Value& spec_document) {
  // Chaos hook: an allocation failure while building the new SpecState.
  // Thrown before any mutation, so the old spec stays live and the client
  // gets a structured "exception" response — load_spec failures must never
  // take the daemon down.
  if (resil::chaos_fire(resil::Site::SpecLoad)) throw std::bad_alloc();
  auto state = std::make_shared<SpecState>(dsl::load_assembly(spec_document));
  state->selection = dsl::load_selection_points(spec_document);
  if (options_.shared_memo) {
    state->memo = core::make_shared_memo(state->assembly);
    state->snap_key = snap::spec_key(state->assembly);
    if (!options_.snapshot_path.empty()) {
      // Warm the fresh table from disk before the swap makes it visible.
      // Any rejection — missing, truncated, corrupt, stale, other build —
      // leaves the table empty: exactly the cold start a snapshot-less
      // server would make, so correctness never depends on the file.
      const snap::LoadResult warm = snap::load_snapshot(
          options_.snapshot_path, *state->memo, state->snap_key);
      snapshot_last_load_status_.store(static_cast<int>(warm.error.status),
                                       std::memory_order_relaxed);
      if (warm.ok()) {
        snapshot_entries_loaded_.fetch_add(warm.entries,
                                           std::memory_order_relaxed);
      }
    }
  }
  const std::size_t services = state->services;
  swap_state(std::move(state));
  return services;
}

bool Server::has_spec() const { return current_state() != nullptr; }

ServerStats Server::stats() const {
  ServerStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.evals = evals_.load(std::memory_order_relaxed);
  out.batch_jobs = batch_jobs_.load(std::memory_order_relaxed);
  out.inject_scenarios = inject_scenarios_.load(std::memory_order_relaxed);
  out.spec_loads = spec_loads_.load(std::memory_order_relaxed);
  out.engine_evaluations = engine_evaluations_.load(std::memory_order_relaxed);
  out.engine_memo_hits = engine_memo_hits_.load(std::memory_order_relaxed);
  out.shared_hits = shared_hits_.load(std::memory_order_relaxed);
  out.fixpoint_sccs = fixpoint_sccs_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  out.queue_depth_max = queue_depth_max_.load(std::memory_order_relaxed);
  out.requests_in_flight_max = in_flight_max_.load(std::memory_order_relaxed);
  out.shard_requests = shard_requests_.load(std::memory_order_relaxed);
  out.shard_combinations = shard_combinations_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kOpNames.size(); ++i) {
    out.op_counts[kOpNames[i]] = op_counts_[i].load(std::memory_order_relaxed);
  }
  const sched::SchedStats sched_stats = sched::Scheduler::global().stats();
  out.tasks_run = sched_stats.tasks_run;
  out.steals = sched_stats.steals;
  out.max_queue_depth = sched_stats.max_queue_depth;
  return out;
}

bool Server::try_admit() {
  std::size_t expected = pending_.load(std::memory_order_relaxed);
  for (;;) {
    if (options_.max_pending != 0 && expected >= options_.max_pending) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (pending_.compare_exchange_weak(expected, expected + 1,
                                       std::memory_order_relaxed)) {
      raise_max(queue_depth_max_, expected + 1);
      return true;
    }
  }
}

void Server::release_admission() noexcept {
  pending_.fetch_sub(1, std::memory_order_relaxed);
}

std::string Server::overloaded_response(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  errors_.fetch_add(1, std::memory_order_relaxed);
  std::optional<json::Value> id;
  try {
    id = parse_request(line).id;
  } catch (const std::exception&) {
    // Even an unparseable request gets a shed response — it occupied an
    // arrival slot like any other; it just cannot be correlated by id.
  }
  return dump_response(make_overload_response(
      id,
      "server overloaded: admission queue full (max_pending " +
          std::to_string(options_.max_pending) + ")",
      options_.retry_after_ms));
}

std::string Server::handle_line(const std::string& line,
                                std::shared_ptr<const guard::CancelToken> cancel,
                                resil::TokenBucket* rate_bucket) {
  const std::uint64_t concurrent =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  raise_max(in_flight_max_, concurrent);
  struct Release {
    std::atomic<std::uint64_t>& counter;
    ~Release() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } release{in_flight_};
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::optional<json::Value> id;
  try {
    Request request = parse_request(line);
    id = request.id;
    // Admission control: a client that already vanished gets a structured
    // "cancelled" response without any evaluation work. (Mid-flight cancels
    // are caught at the guard checkpoints inside the engine.)
    if (cancel != nullptr && cancel->cancelled()) {
      throw Cancelled("request cancelled: client disconnected", 0, 0, 0.0);
    }
    const bool metered = rate_bucket != nullptr && rate_bucket->limited();
    if (metered && !rate_bucket->try_acquire()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      return dump_response(make_overload_response(
          id, "client rate limit exceeded", options_.retry_after_ms));
    }
    std::uint64_t cost = 1;
    json::Object response = dispatch(request, cancel, metered, &cost);
    // Post-paid: charge the request's actual logical cost (failed requests
    // paid through their budget instead and charge nothing extra).
    if (metered) {
      rate_bucket->charge(
          static_cast<double>(std::max<std::uint64_t>(cost, 1)));
    }
    if (!response.at("ok").as_bool()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return dump_response(std::move(response));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return dump_response(make_error_response(id, e));
  }
}

json::Object Server::dispatch(
    const Request& request,
    const std::shared_ptr<const guard::CancelToken>& cancel, bool metered,
    std::uint64_t* cost) {
  count_op(request.op);
  if (request.op == "eval") return op_eval(request, cancel, metered, cost);
  if (request.op == "batch") {
    json::Object response = op_batch(request, cancel);
    *cost = static_cast<std::uint64_t>(response.at("jobs").as_number());
    return response;
  }
  if (request.op == "inject") {
    json::Object response = op_inject(request, cancel);
    *cost = static_cast<std::uint64_t>(response.at("scenarios").as_number());
    return response;
  }
  if (request.op == "load_spec") return op_load_spec(request);
  if (request.op == "set_attributes") return op_set_attributes(request);
  if (request.op == "shard") return op_shard(request, cost);
  if (request.op == "stats") return op_stats(request);
  if (request.op == "health") return op_health(request);
  if (request.op == "snapshot") return op_snapshot(request);
  if (request.op == "version") {
    json::Object response = make_response(request.id, true);
    response["version"] = version_string();
    response["protocol"] = kProtocolVersion;
    return response;
  }
  if (request.op == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    json::Object response = make_response(request.id, true);
    response["shutting_down"] = true;
    return response;
  }
  throw InvalidArgument("unknown op '" + request.op + "'");
}

json::Object Server::op_eval(
    const Request& request,
    const std::shared_ptr<const guard::CancelToken>& cancel, bool metered,
    std::uint64_t* cost) {
  std::shared_ptr<SpecState> state = require_spec();
  const json::Value& document = request.document;
  const std::string& service = document.at("service").as_string();
  const std::vector<double> args = parse_args_field(document);

  SessionLease lease(*this, state);
  core::EvalSession& session = lease.session();
  std::shared_ptr<const guard::CancelToken> budget_token = cancel;
  if (metered && budget_token == nullptr) {
    // Rate limiting charges the request's *logical* cost, which only the
    // guard meter observes. An unlimited budget with no cancel token leaves
    // the meter disabled, so arm it with a never-cancelled token — the
    // metering is free by the perf_guard bound and changes no result bytes.
    static const std::shared_ptr<const guard::CancelToken> kMeterOnly =
        std::make_shared<const guard::CancelToken>();
    budget_token = kMeterOnly;
  }
  session.set_budget(effective_budget(options_.budget, document),
                     std::move(budget_token));
  // Per-request isolation: re-base to exactly (assembly defaults + this
  // request's overrides) — whatever the previous tenant of the session did
  // is reverted here, which is what makes pooled reuse bit-identical to a
  // fresh single-client server.
  session.rebase_attributes(
      document.contains("attributes")
          ? parse_number_map(document.at("attributes"))
          : std::map<std::string, double>{});
  if (document.contains("pfail_overrides")) {
    auto overrides = parse_number_map(document.at("pfail_overrides"));
    if (!overrides.empty()) {
      session.set_pfail_overrides(std::move(overrides));
      lease.mark_pfail_dirty();
    }
  }

  const double pfail = session.pfail(service, args);
  // Each top-level query meters its own window; the request's logical cost
  // is the sum over its queries. Warmth-independent by the guard contract
  // (memo hits replay their stored subtree cost), so the same request
  // always costs the same — the property per-client rate limiting needs.
  std::uint64_t logical = session.engine().meter().evaluations();
  json::Object response = make_response(request.id, true);
  response["service"] = service;
  response["pfail"] = pfail;
  response["reliability"] = 1.0 - pfail;
  if (document.contains("modes") && document.at("modes").as_bool()) {
    const auto modes = session.failure_modes(service, args);
    logical += session.engine().meter().evaluations();
    json::Object block;
    block["success"] = modes.success;
    block["detected_failure"] = modes.detected_failure;
    block["silent_failure"] = modes.silent_failure;
    response["modes"] = json::Value(std::move(block));
  }
  if (cost != nullptr) *cost = std::max<std::uint64_t>(logical, 1);
  evals_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

json::Object Server::op_batch(
    const Request& request,
    const std::shared_ptr<const guard::CancelToken>& cancel) {
  std::shared_ptr<SpecState> state = require_spec();
  const json::Value& document = request.document;
  const json::Value& jobs_value = document.at("jobs");
  if (!jobs_value.is_array()) {
    throw InvalidArgument("\"jobs\" must be an array of job objects");
  }

  // Keep-going parse, exactly like the batch CLI: a malformed entry
  // degrades to an error slot for that job only.
  struct ParsedJob {
    std::optional<runtime::BatchJob> job;
    std::string error_category;
    std::string error_message;
  };
  std::vector<ParsedJob> parsed(jobs_value.size());
  std::vector<runtime::BatchJob> jobs;
  jobs.reserve(jobs_value.size());
  for (std::size_t i = 0; i < jobs_value.size(); ++i) {
    const json::Value& entry = jobs_value.at(i);
    try {
      runtime::BatchJob job;
      job.service = entry.at("service").as_string();
      job.args = parse_args_field(entry);
      if (entry.contains("attributes")) {
        job.attribute_overrides = parse_number_map(entry.at("attributes"));
      }
      if (entry.contains("pfail_overrides")) {
        job.pfail_overrides = parse_number_map(entry.at("pfail_overrides"));
      }
      if (entry.contains("budget")) {
        job.budget = guard::budget_from_json(
            entry.at("budget"), "job #" + std::to_string(i) + ": budget");
      }
      parsed[i].job = std::move(job);
    } catch (const std::exception& e) {
      parsed[i].error_category = error_category(e);
      parsed[i].error_message = e.what();
    }
    if (parsed[i].job) jobs.push_back(*parsed[i].job);
  }

  runtime::BatchEvaluator::Options options;
  options.exec() = options_.exec();  // threads / seed / stealing / sharing
  options.engine = options_.engine;
  options.budget = effective_budget(options_.budget, document);
  options.cancel = cancel;
  if (document.contains("options")) {
    for (const auto& [name, value] : document.at("options").as_object()) {
      if (name == "allow_recursion") {
        options.engine.allow_recursion = value.as_bool();
      } else if (name == "max_fixpoint_iterations") {
        options.engine.max_fixpoint_iterations =
            static_cast<std::size_t>(value.as_number());
      } else if (name == "shared_memo") {
        options.shared_memo = options.shared_memo && value.as_bool();
      } else {
        throw InvalidArgument("batch options: unknown key '" + name + "'");
      }
    }
  }
  // The server's hot table doubles as the batch's cross-worker cache; a
  // request that overrides engine options gets a private table instead
  // (entries must stay comparable to the base configuration).
  const bool base_engine_config =
      options.engine.allow_recursion == options_.engine.allow_recursion &&
      options.engine.max_fixpoint_iterations ==
          options_.engine.max_fixpoint_iterations;
  if (options.shared_memo && base_engine_config) {
    options.shared_cache = state->memo;
  }
  runtime::BatchEvaluator evaluator(state->assembly, options);
  const std::vector<runtime::BatchItem> items = evaluator.evaluate(jobs);

  json::Array results;
  std::size_t failed = 0;
  std::size_t next_item = 0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    json::Object line;
    line["job"] = i;
    if (parsed[i].job) {
      line["service"] = parsed[i].job->service;
      const runtime::BatchItem& item = items[next_item++];
      if (item.ok) {
        line["pfail"] = item.pfail;
        line["reliability"] = item.reliability;
      } else {
        ++failed;
        line["error"] = item.error_category;
        line["message"] = item.error_message;
        if (item.error_category == "budget_exceeded" ||
            item.error_category == "cancelled") {
          append_guard_fields(line, item.budget_limit, item.evaluations_done,
                              item.states_expanded);
        }
      }
    } else {
      ++failed;
      line["error"] = parsed[i].error_category;
      line["message"] = parsed[i].error_message;
    }
    results.emplace_back(std::move(line));
  }

  batch_jobs_.fetch_add(parsed.size(), std::memory_order_relaxed);
  json::Object response = make_response(request.id, true);
  response["jobs"] = parsed.size();
  response["failed"] = failed;
  response["results"] = json::Value(std::move(results));
  return response;
}

json::Object Server::op_inject(
    const Request& request,
    const std::shared_ptr<const guard::CancelToken>& cancel) {
  std::shared_ptr<SpecState> state = require_spec();
  const json::Value& document = request.document;
  const faults::Campaign campaign =
      faults::load_campaign(document.at("campaign"));

  faults::CampaignRunner::Options options;
  options.exec() = options_.exec();  // threads / seed / stealing / sharing
  options.engine = options_.engine;
  options.budget = effective_budget(options_.budget, document);
  options.cancel = cancel;
  if (options.shared_memo) options.shared_cache = state->memo;
  faults::CampaignRunner runner(state->assembly, options);
  const faults::CampaignReport report = runner.run(campaign);

  json::Array outcomes;
  for (const faults::ScenarioOutcome& outcome : report.outcomes) {
    json::Object line;
    line["scenario"] = outcome.scenario;
    line["name"] = outcome.name;
    if (outcome.ok) {
      line["pfail"] = outcome.pfail;
      line["delta_pfail"] = outcome.delta_pfail;
      line["blast_radius"] = outcome.blast_radius;
      line["evaluations"] = outcome.evaluations;
    } else {
      line["error"] = outcome.error_category;
      line["message"] = outcome.error_message;
      if (outcome.error_category == "budget_exceeded" ||
          outcome.error_category == "cancelled") {
        append_guard_fields(line, outcome.budget_limit,
                            outcome.evaluations_done, outcome.states_expanded);
      }
    }
    outcomes.emplace_back(std::move(line));
  }

  json::Array ranking;
  for (const faults::FaultCriticality& row : report.criticality) {
    json::Object entry;
    entry["fault"] = row.fault;
    entry["label"] = row.label;
    entry["max_delta_pfail"] = row.max_delta_pfail;
    entry["mean_delta_pfail"] = row.mean_delta_pfail;
    entry["scenarios"] = row.scenarios;
    ranking.emplace_back(std::move(entry));
  }

  inject_scenarios_.fetch_add(report.outcomes.size(),
                              std::memory_order_relaxed);
  json::Object response = make_response(request.id, true);
  response["baseline_pfail"] = report.baseline_pfail;
  response["scenarios"] = report.outcomes.size();
  response["failed"] = report.failed_scenarios;
  response["outcomes"] = json::Value(std::move(outcomes));
  response["criticality"] = json::Value(std::move(ranking));
  if (report.frontier_computed) {
    response["reliability_target"] = campaign.reliability_target;
    response["survivable_k"] = report.survivable_k;
  }
  return response;
}

json::Object Server::op_load_spec(const Request& request) {
  const json::Value& document = request.document;
  json::Value parsed_file;
  const json::Value* spec = nullptr;
  if (document.contains("spec")) {
    spec = &document.at("spec");
  } else if (document.contains("path")) {
    parsed_file = json::parse_file(document.at("path").as_string());
    spec = &parsed_file;
  } else {
    throw InvalidArgument(
        "load_spec needs a \"spec\" object or a \"path\" string");
  }
  const std::size_t services = load_spec(*spec);
  json::Object response = make_response(request.id, true);
  response["services"] = services;
  return response;
}

json::Object Server::op_set_attributes(const Request& request) {
  std::shared_ptr<SpecState> state = require_spec();
  const json::Value& document = request.document;
  const auto deltas = parse_number_map(document.at("attributes"));

  // Copy-on-write spec update: the new assembly replaces the old one the
  // same way load_spec does, so every future request (eval, batch, inject)
  // sees the updated base state and the fresh shared table built over it.
  // Updates are cumulative; re-send load_spec to revert to the spec's own
  // values.
  core::Assembly updated = state->assembly;
  const expr::Env env = updated.attribute_env();
  for (const auto& [name, value] : deltas) {
    if (!env.contains(name)) {
      throw LookupError("attribute '" + name +
                        "' is not defined in the assembly");
    }
    updated.set_attribute(name, value);
  }
  auto next = std::make_shared<SpecState>(std::move(updated));
  next->selection = state->selection;  // attribute deltas leave the space intact
  if (options_.shared_memo) {
    next->memo = core::make_shared_memo(next->assembly);
    // The key hashes the overridden content, so snapshots taken before this
    // delta self-invalidate (StaleSpec) against the updated spec — no load
    // attempt is worth making here.
    next->snap_key = snap::spec_key(next->assembly);
  }
  swap_state(std::move(next));

  json::Object response = make_response(request.id, true);
  response["attributes"] = deltas.size();
  return response;
}

json::Object Server::op_shard(const Request& request, std::uint64_t* cost) {
  std::shared_ptr<SpecState> state = require_spec();
  const json::Value& document = request.document;
  if (state->selection.empty()) {
    throw ModelError(
        "shard requires a spec with a \"selection\" array (none declared)");
  }
  const std::string& service = document.at("service").as_string();
  const std::vector<double> args = parse_args_field(document);
  dist::ShardSpec shard;  // default 1/1: the whole space
  if (document.contains("shard")) {
    shard = dist::parse_shard_spec(document.at("shard").as_string());
  }

  core::SelectionOptions options;
  options.exec() = options_.exec();  // threads / seed / stealing / sharing
  if (document.contains("objective")) {
    for (const auto& [name, value] : document.at("objective").as_object()) {
      if (name == "time_weight") {
        options.objective.time_weight = value.as_number();
      } else if (name == "min_reliability") {
        options.objective.min_reliability = value.as_number();
      } else {
        throw InvalidArgument("shard objective: unknown key '" + name + "'");
      }
    }
  }
  if (document.contains("max_combinations")) {
    options.max_combinations =
        static_cast<std::size_t>(document.at("max_combinations").as_number());
  }
  // The server's hot table is the shard's warm start — the serve-side
  // equivalent of a worker process warming from a --snapshot file. Rows are
  // logical, so warmth changes only the report's stats section.
  if (options.shared_memo) options.shared_cache = state->memo;

  const dist::ShardReport report = dist::run_shard(
      state->assembly, service, args, state->selection, shard, options);

  std::uint64_t logical = 0;
  std::size_t failed = 0;
  for (const core::CombinationOutcome& row : report.rows) {
    logical += row.evaluations;
    if (!row.ok) ++failed;
  }
  shard_requests_.fetch_add(1, std::memory_order_relaxed);
  shard_combinations_.fetch_add(report.rows.size(), std::memory_order_relaxed);
  if (cost != nullptr) *cost = std::max<std::uint64_t>(logical, 1);

  json::Object response = make_response(request.id, true);
  response["combinations"] = report.rows.size();
  response["failed"] = failed;
  // The full sealed document, exactly as --shard --out would write it: a
  // client can dump the field to a file and feed it to merge-shards.
  response["report"] = dist::report_to_json(report);
  return response;
}

json::Object Server::op_stats(const Request& request) {
  const ServerStats totals = stats();
  json::Object response = make_response(request.id, true);
  response["requests"] = totals.requests;
  response["errors"] = totals.errors;
  response["evals"] = totals.evals;
  response["batch_jobs"] = totals.batch_jobs;
  response["inject_scenarios"] = totals.inject_scenarios;
  response["spec_loads"] = totals.spec_loads;
  response["engine_evaluations"] = totals.engine_evaluations;
  response["engine_memo_hits"] = totals.engine_memo_hits;
  response["shared_hits"] = totals.shared_hits;
  // Additive fields (protocol stays at version 1; everything above is
  // byte-stable — tests/serve pins that).
  response["tasks_run"] = totals.tasks_run;
  response["steals"] = totals.steals;
  response["max_queue_depth"] = totals.max_queue_depth;
  response["fixpoint_sccs"] = totals.fixpoint_sccs;
  response["shed"] = totals.shed;
  response["rate_limited"] = totals.rate_limited;
  // Saturation high-waters + per-op counters (additive, still protocol 1).
  response["queue_depth_max"] = totals.queue_depth_max;
  response["requests_in_flight_max"] = totals.requests_in_flight_max;
  response["shard_requests"] = totals.shard_requests;
  response["shard_combinations"] = totals.shard_combinations;
  json::Object ops;
  for (const auto& [op, count] : totals.op_counts) ops[op] = count;
  response["ops"] = json::Value(std::move(ops));
  if (!options_.snapshot_path.empty()) {
    json::Object block;
    block["path"] = options_.snapshot_path;
    block["entries_loaded"] =
        snapshot_entries_loaded_.load(std::memory_order_relaxed);
    block["saves"] = snapshot_saves_.load(std::memory_order_relaxed);
    block["save_errors"] =
        snapshot_save_errors_.load(std::memory_order_relaxed);
    const int status = snapshot_last_load_status_.load(std::memory_order_relaxed);
    block["last_load_status"] =
        status < 0 ? "none"
                   : snap::snap_status_name(static_cast<snap::SnapStatus>(status));
    response["snapshot"] = json::Value(std::move(block));
  }
  std::shared_ptr<SpecState> state = current_state();
  response["spec_loaded"] = state != nullptr;
  if (state != nullptr) {
    response["services"] = state->services;
    if (state->memo != nullptr) {
      const memo::SharedMemoStats cache = state->memo->stats();
      json::Object block;
      block["lookups"] = cache.lookups;
      block["hits"] = cache.hits;
      block["misses"] = cache.misses;
      block["insertions"] = cache.insertions;
      block["evictions"] = cache.evictions;
      block["epoch"] = cache.epoch;
      block["entries"] = cache.entries;
      response["shared_cache"] = json::Value(std::move(block));
    }
  }
  response["version"] = version_string();
  response["protocol"] = kProtocolVersion;
  return response;
}

json::Object Server::op_snapshot(const Request& request) {
  std::shared_ptr<SpecState> state = require_spec();
  if (state->memo == nullptr) {
    throw ModelError("snapshot requires the shared memo (shared_memo on)");
  }
  std::string path = options_.snapshot_path;
  if (request.document.contains("path")) {
    path = request.document.at("path").as_string();
  }
  if (path.empty()) {
    throw InvalidArgument(
        "snapshot needs a \"path\" (none configured via --snapshot)");
  }
  const snap::SaveResult result =
      snap::save_snapshot(path, *state->memo, state->snap_key);
  if (result.ok()) {
    snapshot_saves_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot_save_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  json::Object response = make_response(request.id, result.ok());
  response["path"] = path;
  response["status"] = snap::snap_status_name(result.error.status);
  if (result.ok()) {
    response["entries"] = result.entries;
    response["bytes"] = result.bytes;
  } else {
    response["error"] = "io_error";
    response["message"] = result.error.detail;
  }
  return response;
}

json::Object Server::op_health(const Request& request) {
  // Liveness probe for load balancers and the resil::Client: cheap (no
  // session checkout, no spec requirement) and deterministic — every field
  // is a pure function of server configuration and lifecycle state, never
  // of load, so health responses are safe in the golden streams.
  json::Object response = make_response(request.id, true);
  response["status"] = shutdown_requested() ? "draining" : "ok";
  std::shared_ptr<SpecState> state = current_state();
  response["spec_loaded"] = state != nullptr;
  if (state != nullptr) response["services"] = state->services;
  response["version"] = version_string();
  response["protocol"] = kProtocolVersion;
  return response;
}

}  // namespace sorel::serve
