#include "sorel/serve/protocol.hpp"

#include "sorel/util/error.hpp"

// The CMake build injects the project version; the fallback keeps the
// header usable from ad-hoc builds.
#ifndef SOREL_VERSION_STRING
#define SOREL_VERSION_STRING "0.0.0-unversioned"
#endif

namespace sorel::serve {

const char* version_string() noexcept { return SOREL_VERSION_STRING; }

Request parse_request(const std::string& line) {
  json::Value document = json::parse(line);
  if (!document.is_object()) {
    throw ParseError("request must be a JSON object");
  }
  Request request;
  if (document.contains("id")) {
    request.id = document.at("id");
  }
  if (!document.contains("op")) {
    throw InvalidArgument("request is missing the \"op\" field");
  }
  const json::Value& op = document.at("op");
  if (!op.is_string()) {
    throw InvalidArgument("request \"op\" must be a string");
  }
  request.op = op.as_string();
  request.document = std::move(document);
  return request;
}

json::Object make_response(const std::optional<json::Value>& id, bool ok) {
  json::Object response;
  if (id) response["id"] = *id;
  response["ok"] = ok;
  return response;
}

json::Object make_error_response(const std::optional<json::Value>& id,
                                 const std::exception& e) {
  json::Object response = make_response(id, false);
  response["error"] = error_category(e);
  response["message"] = std::string(e.what());
  // Structured partial-work counters — but only the ones that are
  // byte-stable under the determinism contract. No elapsed_ms (responses
  // are wall-clock-free), and for count budgets only the counter of the
  // limit that fired: that one is clamped to its cap and identical at any
  // memo warmth, while the sibling counter depends on how much of the work
  // replayed from warm state. Deadline stops are inherently wall-clock
  // (excluded from the contract), so they keep both counters as
  // diagnostics; so do cancellations, whose responses are never delivered
  // to anyone who could compare them.
  if (const auto* budget = dynamic_cast<const BudgetExceeded*>(&e)) {
    response["limit"] = budget->limit();
    if (budget->limit() == "max_evaluations") {
      response["evaluations_done"] = budget->evaluations();
    } else if (budget->limit() == "max_states") {
      response["states_expanded"] = budget->states();
    } else {
      response["evaluations_done"] = budget->evaluations();
      response["states_expanded"] = budget->states();
    }
  } else if (const auto* cancelled = dynamic_cast<const Cancelled*>(&e)) {
    response["evaluations_done"] = cancelled->evaluations();
    response["states_expanded"] = cancelled->states();
  }
  return response;
}

json::Object make_overload_response(const std::optional<json::Value>& id,
                                    const std::string& message,
                                    std::uint64_t retry_after_ms) {
  json::Object response = make_response(id, false);
  response["error"] = "overloaded";
  response["message"] = message;
  response["retry_after_ms"] = retry_after_ms;
  return response;
}

std::string dump_response(json::Object response) {
  return json::Value(std::move(response)).dump();
}

}  // namespace sorel::serve
