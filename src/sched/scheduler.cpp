#include "sorel/sched/scheduler.hpp"

#include <cstdlib>
#include <queue>
#include <string>
#include <thread>

#include "sorel/resil/chaos.hpp"
#include "sorel/util/error.hpp"

namespace sorel::sched {

namespace {

// Worker identity of the calling thread. t_task_worker is also set (without
// the scheduler pointer) by runtime::ThreadPool workers via
// mark_task_worker(), so every nested parallel construct — scheduler or
// static pool — degrades to inline regardless of which executor owns the
// thread.
thread_local Scheduler* t_scheduler = nullptr;
thread_local std::size_t t_worker = 0;
thread_local bool t_task_worker = false;

}  // namespace

// Kahn's algorithm over the declared edges; throws before any task runs so
// a cyclic graph can never deadlock the parallel path.
void Scheduler::validate_acyclic(const TaskGraph& graph) {
  const std::vector<TaskGraph::Node>& nodes = graph.nodes_;
  std::vector<std::size_t> pending(nodes.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    pending[i] = nodes[i].predecessors;
    if (pending[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t id = ready.back();
    ready.pop_back();
    ++processed;
    for (const std::size_t succ : nodes[id].successors) {
      if (--pending[succ] == 0) ready.push_back(succ);
    }
  }
  if (processed != nodes.size()) {
    throw InvalidArgument("TaskGraph: dependency edges form a cycle (" +
                          std::to_string(nodes.size() - processed) +
                          " task(s) can never become ready)");
  }
}

// ---------------------------------------------------------------------------
// Construction / teardown

Scheduler::Scheduler(std::size_t workers) {
  if (workers == 0) workers = 1;
  state_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    state_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
    ++generation_;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

// ---------------------------------------------------------------------------
// Worker loop and work acquisition

void Scheduler::worker_loop(std::size_t w) {
  t_scheduler = this;
  t_worker = w;
  t_task_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    if (Task* task = take_work(w)) {
      execute(task, w + 1);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (!stop_ && generation_ == seen) {
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
    }
    seen = generation_;
    if (stop_) {
      lock.unlock();
      // Drain like ThreadPool: finish every queued task before exiting (a
      // completing task may push successors onto this worker's own deque —
      // they are picked up here before the thread goes away).
      while (Task* task = take_work(w)) execute(task, w + 1);
      return;
    }
  }
}

Task* Scheduler::take_work(std::size_t self) {
  WorkerState& me = *state_[self];
  if (Task* task = me.deque.pop_bottom()) return task;

  // Drain the mailbox into the deque (so the bulk becomes stealable) and
  // take the bottom.
  std::vector<Task*> drained;
  {
    std::lock_guard<std::mutex> lock(me.mailbox.mutex);
    drained.swap(me.mailbox.tasks);
  }
  if (!drained.empty()) {
    for (Task* task : drained) me.deque.push_bottom(task);
    note_depth(me.deque.size_hint());
    if (Task* task = me.deque.pop_bottom()) return task;
  }

  // Steal sweep: victims' deques first (oldest work), then their mailboxes
  // (work they have not even looked at yet).
  const std::size_t n = state_.size();
  for (std::size_t off = 1; off < n; ++off) {
    WorkerState& victim = *state_[(self + off) % n];
    if (Task* task = victim.deque.steal_top()) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  for (std::size_t off = 1; off < n; ++off) {
    Mailbox& box = state_[(self + off) % n]->mailbox;
    std::lock_guard<std::mutex> lock(box.mutex);
    if (!box.tasks.empty()) {
      Task* task = box.tasks.back();
      box.tasks.pop_back();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void Scheduler::execute(Task* task, std::size_t slot) {
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  // Chaos hook: a "fault" at task start is a scheduling perturbation (yield
  // the slice), not a dropped task — it shakes up interleavings and steal
  // patterns without breaking the run-exactly-once contract, which is the
  // point: results must stay byte-identical under any interleaving.
  if (resil::chaos_fire(resil::Site::SchedTaskStart)) {
    std::this_thread::yield();
  }
  task->invoke(task, slot);
}

// ---------------------------------------------------------------------------
// Enqueueing

void Scheduler::enqueue_external(Task* const* tasks, std::size_t count) {
  if (count == 0) return;
  const std::size_t workers = state_.size();
  const std::size_t base =
      round_robin_.fetch_add(count, std::memory_order_relaxed);
  // Bucket by target worker so each mailbox is locked once per batch.
  for (std::size_t w = 0; w < workers; ++w) {
    Mailbox& box = state_[w]->mailbox;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      for (std::size_t i = (w + workers - base % workers) % workers; i < count;
           i += workers) {
        box.tasks.push_back(tasks[i]);
      }
      depth = box.tasks.size();
    }
    note_depth(depth);
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++generation_;
  }
  wake_.notify_all();
}

void Scheduler::schedule_ready(Task* task) {
  if (t_scheduler == this) {
    WorkerState& me = *state_[t_worker];
    me.deque.push_bottom(task);
    note_depth(me.deque.size_hint());
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      ++generation_;
    }
    wake_.notify_one();  // a sleeper may steal it
    return;
  }
  enqueue_external(&task, 1);
}

void Scheduler::note_depth(std::size_t depth) noexcept {
  std::uint64_t current = max_depth_.load(std::memory_order_relaxed);
  while (depth > current &&
         !max_depth_.compare_exchange_weak(current, depth,
                                           std::memory_order_relaxed)) {
  }
}

bool Scheduler::nested_inline() const noexcept { return on_task_worker(); }

void Scheduler::wait_remaining(std::atomic<std::size_t>& remaining) {
  for (;;) {
    const std::size_t left = remaining.load(std::memory_order_acquire);
    if (left == 0) return;
    remaining.wait(left, std::memory_order_acquire);
  }
}

// ---------------------------------------------------------------------------
// for_each_dynamic blocks

void Scheduler::invoke_block(Task* task, std::size_t slot) {
  auto* state = static_cast<LoopState*>(task->context);
  try {
    state->call(state->fn, task->begin, task->end, slot);
  } catch (...) {
    std::lock_guard<std::mutex> lock(state->error_mutex);
    if (task->begin < state->error_begin) {
      state->error_begin = task->begin;
      state->error = std::current_exception();
    }
  }
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    state->remaining.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Fire-and-forget submission

namespace {
struct SubmitState {
  std::function<void()> fn;
  Task task;
};

void invoke_submitted(Task* task, std::size_t /*slot*/) {
  std::unique_ptr<SubmitState> owner(static_cast<SubmitState*>(task->context));
  try {
    owner->fn();
  } catch (...) {
    // Submitted closures own their error handling (documented contract,
    // matching runtime::ThreadPool where an escaped exception would
    // terminate). Swallowing beats killing a shared worker.
  }
}
}  // namespace

void Scheduler::submit(std::function<void()> fn) {
  auto state = std::make_unique<SubmitState>();
  state->fn = std::move(fn);
  state->task.invoke = &invoke_submitted;
  state->task.context = state.get();
  Task* task = &state->task;
  state.release();  // invoke_submitted reclaims ownership
  enqueue_external(&task, 1);
}

// ---------------------------------------------------------------------------
// Task graphs

struct Scheduler::GraphRun {
  struct Node {
    Task task;
    std::atomic<std::size_t> pending{0};
    std::atomic<bool> poisoned{false};
    std::exception_ptr error;
  };

  Scheduler* self = nullptr;
  TaskGraph* graph = nullptr;
  std::unique_ptr<Node[]> nodes;
  std::atomic<std::size_t> remaining{0};
};

void Scheduler::invoke_graph_node(Task* task, std::size_t /*slot*/) {
  auto* run = static_cast<GraphRun*>(task->context);
  const std::size_t id = task->begin;
  GraphRun::Node& node = run->nodes[id];
  bool failed = node.poisoned.load(std::memory_order_relaxed);
  if (!failed) {
    try {
      run->graph->nodes_[id].fn();
    } catch (...) {
      node.error = std::current_exception();
      failed = true;
    }
  }
  for (const TaskGraph::TaskId succ_id : run->graph->nodes_[id].successors) {
    GraphRun::Node& succ = run->nodes[succ_id];
    if (failed) succ.poisoned.store(true, std::memory_order_relaxed);
    // acq_rel: the final decrement observes every predecessor's poison
    // marks and errors before the successor is scheduled.
    if (succ.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      run->self->schedule_ready(&succ.task);
    }
  }
  if (run->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    run->remaining.notify_all();
  }
}

void Scheduler::run(TaskGraph& graph) {
  const std::size_t count = graph.nodes_.size();
  if (count == 0) return;
  validate_acyclic(graph);
  if (count == 1 || nested_inline()) {
    run_graph_inline(graph);
    return;
  }

  GraphRun run;
  run.self = this;
  run.graph = &graph;
  run.nodes = std::make_unique<GraphRun::Node[]>(count);
  run.remaining.store(count, std::memory_order_relaxed);
  std::vector<Task*> roots;
  for (std::size_t id = 0; id < count; ++id) {
    GraphRun::Node& node = run.nodes[id];
    node.task.invoke = &Scheduler::invoke_graph_node;
    node.task.context = &run;
    node.task.begin = id;
    node.pending.store(graph.nodes_[id].predecessors,
                       std::memory_order_relaxed);
    if (graph.nodes_[id].predecessors == 0) roots.push_back(&node.task);
  }
  enqueue_external(roots.data(), roots.size());
  wait_remaining(run.remaining);
  for (std::size_t id = 0; id < count; ++id) {
    if (run.nodes[id].error) std::rethrow_exception(run.nodes[id].error);
  }
}

void Scheduler::run_graph_inline(TaskGraph& graph) {
  const std::size_t count = graph.nodes_.size();
  // Deterministic serial order: among ready tasks, lowest id first. Results
  // cannot depend on this (independent tasks must not communicate), but a
  // fixed order keeps inline replays byte-for-byte reproducible.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  std::vector<std::size_t> pending(count);
  std::vector<char> poisoned(count, 0);
  std::size_t error_id = count;
  std::exception_ptr error;
  for (std::size_t id = 0; id < count; ++id) {
    pending[id] = graph.nodes_[id].predecessors;
    if (pending[id] == 0) ready.push(id);
  }
  while (!ready.empty()) {
    const std::size_t id = ready.top();
    ready.pop();
    bool failed = poisoned[id] != 0;
    if (!failed) {
      try {
        graph.nodes_[id].fn();
      } catch (...) {
        if (id < error_id) {
          error_id = id;
          error = std::current_exception();
        }
        failed = true;
      }
    }
    for (const TaskGraph::TaskId succ : graph.nodes_[id].successors) {
      if (failed) poisoned[succ] = 1;
      if (--pending[succ] == 0) ready.push(succ);
    }
  }
  if (error) std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// Introspection and globals

SchedStats Scheduler::stats() const noexcept {
  SchedStats out;
  out.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  out.steals = steals_.load(std::memory_order_relaxed);
  out.max_queue_depth = max_depth_.load(std::memory_order_relaxed);
  return out;
}

bool Scheduler::on_scheduler_thread() noexcept { return t_scheduler != nullptr; }

void Scheduler::mark_task_worker() noexcept { t_task_worker = true; }

bool Scheduler::on_task_worker() noexcept { return t_task_worker; }

Scheduler& Scheduler::global() {
  static Scheduler scheduler(default_workers());
  return scheduler;
}

std::size_t Scheduler::default_workers() {
  if (const char* env = std::getenv("SOREL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

}  // namespace sorel::sched
