#include "sorel/json/json.hpp"

#include <cmath>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sorel/util/error.hpp"

namespace sorel::json {

namespace {

const char* type_name(Type t) {
  switch (t) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kNumber:
      return "number";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(Type actual, const char* wanted) {
  throw InvalidArgument(std::string("JSON value is ") + type_name(actual) +
                        ", expected " + wanted);
}

}  // namespace

Value::Value(double n) : type_(Type::kNumber), number_(n) {
  if (!std::isfinite(n)) {
    throw InvalidArgument("JSON numbers must be finite");
  }
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error(type_, "bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error(type_, "number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error(type_, "string");
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error(type_, "array");
  return array_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error(type_, "array");
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error(type_, "object");
  return object_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error(type_, "object");
  return object_;
}

bool Value::contains(std::string_view key) const {
  return type_ == Type::kObject && object_.find(std::string(key)) != object_.end();
}

const Value& Value::at(std::string_view key) const {
  if (type_ != Type::kObject) type_error(type_, "object");
  const auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    throw LookupError("JSON object has no member '" + std::string(key) + "'");
  }
  return it->second;
}

const Value& Value::get_or(std::string_view key, const Value& fallback) const {
  if (type_ != Type::kObject) type_error(type_, "object");
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? fallback : it->second;
}

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::kNull) *this = Value(Object{});
  if (type_ != Type::kObject) type_error(type_, "object");
  return object_[key];
}

const Value& Value::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error(type_, "array");
  if (index >= array_.size()) {
    throw InvalidArgument("JSON array index " + std::to_string(index) +
                          " out of range (size " + std::to_string(array_.size()) +
                          ")");
  }
  return array_[index];
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error(type_, "array or object");
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

namespace {

void write_escaped(const std::string& s, std::string& out) {
  out += '"';
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;  // UTF-8 bytes pass through unchanged
        }
    }
  }
  out += '"';
}

void write_number(double n, std::string& out) {
  if (n == static_cast<long long>(n) && std::fabs(n) < 1e15) {
    out += std::to_string(static_cast<long long>(n));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", n);
  out += buf;
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case Type::kNumber:
      write_number(v.as_number(), out);
      return;
    case Type::kString:
      write_escaped(v.as_string(), out);
      return;
    case Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out += indent < 0 ? "," : ",";
        newline(depth + 1);
        dump_value(a[i], out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : o) {
        if (!first) out += ",";
        first = false;
        newline(depth + 1);
        write_escaped(key, out);
        out += indent < 0 ? ":" : ": ";
        dump_value(member, out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out, -1, 0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  dump_value(*this, out, 2, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (!at_end()) fail("trailing content after JSON document");
    return v;
  }

 private:
  // Containers recurse; bound the depth so adversarial input exhausts the
  // error path instead of the call stack.
  static constexpr std::size_t kMaxDepth = 500;

  Value parse_value() {
    if (depth_ > kMaxDepth) fail("nesting deeper than 500 levels");
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        expect_keyword("true");
        return Value(true);
      case 'f':
        expect_keyword("false");
        return Value(false);
      case 'n':
        expect_keyword("null");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    ++depth_;
    advance();  // '{'
    Object obj;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (!consume(':')) fail("expected ':' after object key");
      skip_ws();
      obj[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    ++depth_;
    advance();  // '['
    Array arr;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    advance();  // '"'
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = peek();
      if (c == '"') {
        advance();
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out += c;
        advance();
        continue;
      }
      advance();  // '\\'
      if (at_end()) fail("unterminated escape");
      const char esc = peek();
      advance();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!consume('\\') || !consume('u')) fail("unpaired UTF-16 surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          fail(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("truncated \\u escape");
      const char c = peek();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
      advance();
    }
    return value;
  }

  static void append_utf8(unsigned cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (!at_end() && peek() == '-') advance();
    bool saw_digit = false;
    while (!at_end() && peek() >= '0' && peek() <= '9') {
      saw_digit = true;
      advance();
    }
    if (!at_end() && peek() == '.') {
      advance();
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!saw_digit) fail("malformed number");
    double value = 0.0;
    const char* first = text_.data() + begin;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) {
      fail("number is outside the range of a finite double");
    }
    if (ec != std::errc{} || ptr != last) fail("malformed number");
    return Value(value);
  }

  void expect_keyword(std::string_view kw) {
    for (const char c : kw) {
      if (at_end() || peek() != c) fail("invalid literal");
      advance();
    }
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    advance();
    return true;
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON parse error: " + message, line_, column_);
  }

  std::string_view text_;
  std::size_t depth_ = 0;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open JSON file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace sorel::json
