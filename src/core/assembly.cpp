#include "sorel/core/assembly.hpp"

#include <string>
#include <utility>

#include "sorel/util/error.hpp"

namespace sorel::core {

void Assembly::add_service(ServicePtr service) {
  if (!service) throw InvalidArgument("add_service: null service");
  const std::string& name = service->name();
  if (services_.count(name)) {
    throw InvalidArgument("duplicate service name '" + name + "' in assembly");
  }
  services_.emplace(name, std::move(service));
}

bool Assembly::has_service(std::string_view name) const {
  return services_.find(name) != services_.end();
}

const ServicePtr& Assembly::service(std::string_view name) const {
  const auto it = services_.find(name);
  if (it == services_.end()) {
    throw LookupError("assembly has no service named '" + std::string(name) + "'");
  }
  return it->second;
}

std::vector<std::string> Assembly::service_names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, svc] : services_) out.push_back(name);
  return out;
}

void Assembly::bind(std::string_view service_name, std::string_view port,
                    PortBinding port_binding) {
  const ServicePtr& svc = service(service_name);
  if (svc->is_simple()) {
    throw ModelError("cannot bind port '" + std::string(port) +
                     "' of simple service '" + std::string(service_name) + "'");
  }
  if (!has_service(port_binding.target)) {
    throw LookupError("binding target '" + port_binding.target +
                      "' is not a registered service");
  }
  if (!port_binding.connector.empty() && !has_service(port_binding.connector)) {
    throw LookupError("binding connector '" + port_binding.connector +
                      "' is not a registered service");
  }
  bindings_[{std::string(service_name), std::string(port)}] = std::move(port_binding);
}

const PortBinding& Assembly::binding(std::string_view service_name,
                                     std::string_view port) const {
  const auto it = bindings_.find({std::string(service_name), std::string(port)});
  if (it == bindings_.end()) {
    throw ModelError("port '" + std::string(port) + "' of service '" +
                     std::string(service_name) + "' is not bound");
  }
  return it->second;
}

void Assembly::set_attribute(std::string name, double value) {
  attribute_overrides_[std::move(name)] = value;
}

expr::Env Assembly::attribute_env() const {
  expr::Env env;
  for (const auto& [name, svc] : services_) {
    for (const auto& [attr, value] : svc->default_attributes()) {
      env.set(attr, value);
    }
  }
  for (const auto& [attr, value] : attribute_overrides_) env.set(attr, value);
  return env;
}

void Assembly::validate() const {
  for (const auto& [name, svc] : services_) {
    const FlowGraph* flow = svc->flow();
    if (flow == nullptr) continue;
    flow->validate_structure();
    for (const std::string& port : flow->referenced_ports()) {
      const PortBinding& b = binding(name, port);  // throws when unbound
      const ServicePtr& target = service(b.target);
      // Arity of each request against the bound target.
      for (const FlowStateId sid : flow->real_states()) {
        for (const ServiceRequest& req : flow->state(sid).requests) {
          if (req.port != port) continue;
          if (req.actuals.size() != target->arity()) {
            throw ModelError(
                "service '" + name + "', state '" + flow->state(sid).name +
                "': request to port '" + port + "' passes " +
                std::to_string(req.actuals.size()) + " actuals but target '" +
                b.target + "' expects " + std::to_string(target->arity()));
          }
          const auto& conn_actuals =
              req.connector_actuals.empty() ? b.connector_actuals : req.connector_actuals;
          if (!b.connector.empty()) {
            const ServicePtr& conn = service(b.connector);
            if (conn_actuals.size() != conn->arity()) {
              throw ModelError("service '" + name + "', state '" +
                               flow->state(sid).name + "': connector '" +
                               b.connector + "' expects " +
                               std::to_string(conn->arity()) +
                               " actuals, binding provides " +
                               std::to_string(conn_actuals.size()));
            }
          }
        }
      }
    }
  }
}

}  // namespace sorel::core
