#include "sorel/core/performance.hpp"

#include <algorithm>
#include <string>

#include "sorel/markov/absorbing.hpp"
#include "sorel/markov/dtmc.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

PerformanceEngine::PerformanceEngine(const Assembly& assembly)
    : PerformanceEngine(assembly, Options{}) {}

PerformanceEngine::PerformanceEngine(const Assembly& assembly, Options options)
    : base_env_(assembly.attribute_env()), assembly_(assembly), options_(options) {
  assembly_.validate();
}

double PerformanceEngine::expected_duration(std::string_view service_name,
                                            const std::vector<double>& args) {
  return duration_cached(*assembly_.service(service_name), args);
}

double PerformanceEngine::duration_cached(const Service& service,
                                          const std::vector<double>& args) {
  if (args.size() != service.arity()) {
    throw InvalidArgument("service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  std::pair<const Service*, std::vector<double>> key{&service, args};
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;
  for (const auto& open : stack_) {
    if (open == key) {
      throw RecursionError("expected duration of recursively assembled service '" +
                           service.name() + "' is unsupported");
    }
  }
  stack_.push_back(key);
  double result;
  try {
    result = evaluate(service, args);
  } catch (...) {
    stack_.pop_back();
    throw;
  }
  stack_.pop_back();
  memo_.emplace(std::move(key), result);
  return result;
}

double PerformanceEngine::evaluate(const Service& service,
                                   const std::vector<double>& args) {
  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(service.formals()[i].name, args[i]);
  }

  if (const auto* simple = dynamic_cast<const SimpleService*>(&service)) {
    const double t = simple->duration_expr().eval(env);
    if (t < 0.0) {
      throw NumericError("duration of '" + service.name() + "' evaluated to " +
                         util::format_double(t) + " < 0");
    }
    return t;
  }

  const auto& composite = dynamic_cast<const CompositeService&>(service);
  const FlowGraph& flow = *composite.flow();

  // Expected visits to each state from the usage-profile chain (no failure
  // augmentation: this is the expected time of an undisturbed run).
  markov::Dtmc chain;
  const std::size_t flow_ids = flow.state_count() + 2;
  std::vector<markov::StateId> to_chain(flow_ids);
  to_chain[FlowGraph::kStart] = chain.add_state("Start");
  to_chain[FlowGraph::kEnd] = chain.add_state("End");
  for (const FlowStateId sid : flow.real_states()) {
    to_chain[sid] = chain.add_state(flow.state(sid).name);
  }
  const auto emit = [&](FlowStateId from) {
    for (const auto& t : flow.transitions_from(from)) {
      const double p = t.probability.eval(env);
      if (!(p >= 0.0 && p <= 1.0 + 1e-9)) {
        throw NumericError("transition probability out of range in '" +
                           composite.name() + "'");
      }
      chain.add_transition(to_chain[from], to_chain[t.to], std::min(1.0, p));
    }
  };
  emit(FlowGraph::kStart);
  for (const FlowStateId sid : flow.real_states()) emit(sid);

  const auto analysis = markov::AbsorptionAnalysis::compute(chain);
  double total = 0.0;
  for (const FlowStateId sid : flow.real_states()) {
    // Skip never-visited states entirely: they contribute no time, and
    // evaluating their requests could recurse into parameter regions the
    // flow guards against (argument-decreasing recursion).
    const double visits =
        analysis.expected_visits(to_chain[FlowGraph::kStart], to_chain[sid]);
    if (visits == 0.0) continue;
    const FlowState& state = flow.state(sid);

    // State time: request time = connector time + target time, combined
    // sequentially (sum) or concurrently (max) per Options.
    double state_time = 0.0;
    for (const ServiceRequest& request : state.requests) {
      const PortBinding& bind = assembly_.binding(composite.name(), request.port);
      const ServicePtr& target = assembly_.service(bind.target);
      std::vector<double> child_args;
      child_args.reserve(request.actuals.size());
      for (const expr::Expr& actual : request.actuals) {
        child_args.push_back(actual.eval(env));
      }
      double request_time = duration_cached(*target, child_args);
      if (!bind.connector.empty()) {
        const ServicePtr& connector = assembly_.service(bind.connector);
        expr::Env conn_env = env;
        for (std::size_t i = 0; i < child_args.size(); ++i) {
          conn_env.set("arg" + std::to_string(i), child_args[i]);
        }
        const auto& actual_exprs = request.connector_actuals.empty()
                                       ? bind.connector_actuals
                                       : request.connector_actuals;
        std::vector<double> conn_args;
        conn_args.reserve(actual_exprs.size());
        for (const expr::Expr& actual : actual_exprs) {
          conn_args.push_back(actual.eval(conn_env));
        }
        request_time += duration_cached(*connector, conn_args);
      }
      if (options_.parallel_and && state.completion == CompletionModel::kAnd) {
        state_time = std::max(state_time, request_time);
      } else {
        state_time += request_time;
      }
    }

    total += visits * state_time;
  }
  return total;
}

}  // namespace sorel::core
