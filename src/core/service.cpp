#include "sorel/core/service.hpp"

#include <utility>

#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

using expr::Expr;

Service::Service(std::string name, std::vector<FormalParam> formal_params,
                 std::map<std::string, double> attributes)
    : name_(std::move(name)),
      formals_(std::move(formal_params)),
      attributes_(std::move(attributes)) {
  if (name_.empty()) throw InvalidArgument("service name must be non-empty");
  for (std::size_t i = 0; i < formals_.size(); ++i) {
    if (!util::is_identifier(formals_[i].name)) {
      throw InvalidArgument("service '" + name_ + "': formal parameter '" +
                            formals_[i].name + "' is not a valid identifier");
    }
    for (std::size_t j = i + 1; j < formals_.size(); ++j) {
      if (formals_[i].name == formals_[j].name) {
        throw InvalidArgument("service '" + name_ +
                              "': duplicate formal parameter '" +
                              formals_[i].name + "'");
      }
    }
  }
}

SimpleService::SimpleService(std::string name, std::vector<FormalParam> formal_params,
                             Expr pfail, std::map<std::string, double> attributes)
    : Service(std::move(name), std::move(formal_params), std::move(attributes)),
      pfail_(std::move(pfail)) {}

CompositeService::CompositeService(std::string name,
                                   std::vector<FormalParam> formal_params,
                                   FlowGraph flow_graph,
                                   std::map<std::string, double> attributes)
    : Service(std::move(name), std::move(formal_params), std::move(attributes)),
      flow_(std::move(flow_graph)) {
  flow_.validate_structure();
}

namespace {

std::vector<FormalParam> to_formals(const std::vector<std::string>& names) {
  std::vector<FormalParam> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back({n, ""});
  return out;
}

}  // namespace

ServicePtr make_cpu_service(std::string name, double speed, double failure_rate) {
  if (speed <= 0.0) {
    throw InvalidArgument("cpu service '" + name + "': speed must be positive");
  }
  if (failure_rate < 0.0) {
    throw InvalidArgument("cpu service '" + name +
                          "': failure rate must be non-negative");
  }
  const std::string lambda_attr = name + ".lambda";
  const std::string speed_attr = name + ".s";
  // Eq. (1): Pfail(cpu, N) = 1 − e^(−λ N / s), published over attribute
  // variables so sensitivity analysis can perturb λ and s.
  const Expr pfail =
      1.0 - exp(-(Expr::var(lambda_attr) * Expr::var("N") / Expr::var(speed_attr)));
  auto service = std::make_shared<SimpleService>(
      std::move(name), std::vector<FormalParam>{{"N", "operations to execute"}},
      pfail,
      std::map<std::string, double>{{lambda_attr, failure_rate}, {speed_attr, speed}});
  service->set_duration_expr(Expr::var("N") / Expr::var(speed_attr));
  return service;
}

ServicePtr make_network_service(std::string name, double bandwidth,
                                double failure_rate) {
  if (bandwidth <= 0.0) {
    throw InvalidArgument("network service '" + name +
                          "': bandwidth must be positive");
  }
  if (failure_rate < 0.0) {
    throw InvalidArgument("network service '" + name +
                          "': failure rate must be non-negative");
  }
  const std::string beta_attr = name + ".beta";
  const std::string bw_attr = name + ".b";
  // Eq. (2): Pfail(net, B) = 1 − e^(−β B / b).
  const Expr pfail =
      1.0 - exp(-(Expr::var(beta_attr) * Expr::var("B") / Expr::var(bw_attr)));
  auto service = std::make_shared<SimpleService>(
      std::move(name), std::vector<FormalParam>{{"B", "bytes to transmit"}}, pfail,
      std::map<std::string, double>{{beta_attr, failure_rate}, {bw_attr, bandwidth}});
  service->set_duration_expr(Expr::var("B") / Expr::var(bw_attr));
  return service;
}

ServicePtr make_perfect_service(std::string name, std::vector<std::string> formal_names) {
  return std::make_shared<SimpleService>(std::move(name), to_formals(formal_names),
                                         Expr::constant(0.0));
}

ServicePtr make_simple_service(std::string name, std::vector<std::string> formal_names,
                               Expr pfail, std::map<std::string, double> attributes) {
  return std::make_shared<SimpleService>(std::move(name), to_formals(formal_names),
                                         std::move(pfail), std::move(attributes));
}

ServicePtr make_simple_service(std::string name, std::vector<std::string> formal_names,
                               Expr pfail, std::map<std::string, double> attributes,
                               Expr duration) {
  auto service = std::make_shared<SimpleService>(
      std::move(name), to_formals(formal_names), std::move(pfail),
      std::move(attributes));
  service->set_duration_expr(std::move(duration));
  return service;
}

}  // namespace sorel::core
