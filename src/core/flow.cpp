#include "sorel/core/flow.hpp"

#include <algorithm>
#include <deque>

#include "sorel/util/error.hpp"

namespace sorel::core {

FlowGraph::FlowGraph() : transitions_(2) {}  // rows for Start and End

FlowStateId FlowGraph::add_state(FlowState state) {
  if (state.name.empty()) throw InvalidArgument("flow state name must be non-empty");
  if (state.name == "Start" || state.name == "End" || state.name == "Fail") {
    throw InvalidArgument("flow state name '" + state.name + "' is reserved");
  }
  for (const FlowState& existing : states_) {
    if (existing.name == state.name) {
      throw InvalidArgument("duplicate flow state name '" + state.name + "'");
    }
  }
  states_.push_back(std::move(state));
  transitions_.emplace_back();
  return states_.size() + 1;  // ids 0/1 reserved for Start/End
}

void FlowGraph::add_transition(FlowStateId from, FlowStateId to,
                               expr::Expr probability) {
  check_id(from, "transition source");
  check_id(to, "transition target");
  if (from == kEnd) throw InvalidArgument("End state cannot have outgoing transitions");
  if (to == kStart) throw InvalidArgument("no transition may enter the Start state");
  transitions_[from].push_back({to, std::move(probability)});
}

const FlowState& FlowGraph::state(FlowStateId id) const {
  if (id < 2 || id >= states_.size() + 2) {
    throw InvalidArgument("flow state id " + std::to_string(id) +
                          " does not name a real state");
  }
  return states_[id - 2];
}

std::string FlowGraph::state_name(FlowStateId id) const {
  if (id == kStart) return "Start";
  if (id == kEnd) return "End";
  return state(id).name;
}

const std::vector<FlowGraph::FlowTransition>& FlowGraph::transitions_from(
    FlowStateId id) const {
  check_id(id, "state");
  return transitions_[id];
}

std::vector<FlowStateId> FlowGraph::real_states() const {
  std::vector<FlowStateId> out(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) out[i] = i + 2;
  return out;
}

std::vector<std::string> FlowGraph::referenced_ports() const {
  std::vector<std::string> out;
  for (const FlowState& s : states_) {
    for (const ServiceRequest& r : s.requests) {
      if (std::find(out.begin(), out.end(), r.port) == out.end()) {
        out.push_back(r.port);
      }
    }
  }
  return out;
}

void FlowGraph::validate_structure() const {
  if (transitions_[kStart].empty()) {
    throw ModelError("flow has no transition out of Start");
  }
  for (FlowStateId id : real_states()) {
    const FlowState& s = state(id);
    if (transitions_[id].empty()) {
      throw ModelError("flow state '" + s.name +
                       "' has no outgoing transition (End is unreachable from it)");
    }
    if (s.completion == CompletionModel::kKOfN) {
      if (s.k < 1 || s.k > s.requests.size()) {
        throw ModelError("flow state '" + s.name + "' uses k-of-n with k=" +
                         std::to_string(s.k) + " outside [1, " +
                         std::to_string(s.requests.size()) + "]");
      }
    }
    if (s.dependency == DependencyModel::kSharing && s.requests.size() > 1) {
      for (const ServiceRequest& r : s.requests) {
        if (r.port != s.requests.front().port) {
          throw ModelError("sharing state '" + s.name +
                           "' addresses multiple ports ('" +
                           s.requests.front().port + "' and '" + r.port +
                           "'); the sharing dependency model requires a single "
                           "shared service");
        }
      }
    }
    for (const ServiceRequest& r : s.requests) {
      if (r.port.empty()) {
        throw ModelError("flow state '" + s.name + "' has a request with an "
                         "empty port name");
      }
    }
  }
  // End must be reachable from Start following the transition structure.
  std::vector<bool> seen(states_.size() + 2, false);
  std::deque<FlowStateId> frontier{kStart};
  seen[kStart] = true;
  while (!frontier.empty()) {
    const FlowStateId id = frontier.front();
    frontier.pop_front();
    for (const FlowTransition& t : transitions_[id]) {
      if (!seen[t.to]) {
        seen[t.to] = true;
        frontier.push_back(t.to);
      }
    }
  }
  if (!seen[kEnd]) throw ModelError("End state is unreachable from Start");
}

void FlowGraph::check_id(FlowStateId id, const char* what) const {
  if (id >= states_.size() + 2) {
    throw InvalidArgument(std::string(what) + " id " + std::to_string(id) +
                          " out of range");
  }
}

}  // namespace sorel::core
