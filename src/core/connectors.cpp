#include "sorel/core/connectors.hpp"

#include <utility>

#include "sorel/util/error.hpp"

namespace sorel::core {

using expr::Expr;

ServicePtr make_lpc_connector(std::string name, double control_transfer_ops,
                              double phi) {
  if (control_transfer_ops < 0.0) {
    throw InvalidArgument("lpc connector '" + name +
                          "': control transfer cost must be non-negative");
  }
  const std::string l_attr = name + ".l";
  const Expr l = Expr::var(l_attr);

  // Figure 2 (left): Start -> {cpu(l)} -> End. Shared-memory communication:
  // the cost is independent of ip/op.
  FlowGraph flow;
  FlowState transfer;
  transfer.name = "transfer";
  transfer.completion = CompletionModel::kAnd;
  ServiceRequest cpu_call;
  cpu_call.port = "cpu";
  cpu_call.actuals = {l};
  cpu_call.label = "control transfer";
  if (phi > 0.0) cpu_call.internal = InternalFailure::per_operation(phi, l);
  transfer.requests.push_back(std::move(cpu_call));
  const FlowStateId sid = flow.add_state(std::move(transfer));
  flow.add_transition(FlowGraph::kStart, sid, Expr::constant(1.0));
  flow.add_transition(sid, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      std::move(name),
      std::vector<FormalParam>{{"ip", "client-to-server data size"},
                               {"op", "server-to-client data size"}},
      std::move(flow), std::map<std::string, double>{{l_attr, control_transfer_ops}});
}

namespace {

/// Build the two AND states of figure 2 (right): request leg over `ip`,
/// response leg over `op`. Used by both the plain and retrying RPC
/// factories.
void append_rpc_legs(FlowGraph& flow, const std::string& c_attr,
                     const std::string& m_attr, double phi,
                     FlowStateId& first_state, FlowStateId& last_state) {
  const Expr c = Expr::var(c_attr);
  const Expr m = Expr::var(m_attr);
  const Expr ip = Expr::var("ip");
  const Expr op = Expr::var("op");

  const auto make_leg = [&](const std::string& state_name, const Expr& size,
                            const char* from_cpu, const char* to_cpu) {
    FlowState leg;
    leg.name = state_name;
    leg.completion = CompletionModel::kAnd;
    leg.dependency = DependencyModel::kNoSharing;

    ServiceRequest marshal;
    marshal.port = from_cpu;
    marshal.actuals = {c * size};
    marshal.label = "marshal";
    if (phi > 0.0) marshal.internal = InternalFailure::per_operation(phi, c * size);

    ServiceRequest transmit;
    transmit.port = "net";
    transmit.actuals = {m * size};
    transmit.label = "transmit";

    ServiceRequest unmarshal;
    unmarshal.port = to_cpu;
    unmarshal.actuals = {c * size};
    unmarshal.label = "unmarshal";
    if (phi > 0.0) unmarshal.internal = InternalFailure::per_operation(phi, c * size);

    leg.requests = {std::move(marshal), std::move(transmit), std::move(unmarshal)};
    return leg;
  };

  first_state = flow.add_state(make_leg("request", ip, "cpu_client", "cpu_server"));
  last_state = flow.add_state(make_leg("response", op, "cpu_server", "cpu_client"));
  flow.add_transition(first_state, last_state, Expr::constant(1.0));
}

}  // namespace

ServicePtr make_rpc_connector(std::string name, double ops_per_byte,
                              double bytes_per_byte, double phi) {
  if (ops_per_byte < 0.0 || bytes_per_byte <= 0.0) {
    throw InvalidArgument("rpc connector '" + name +
                          "': marshalling/wire constants out of range");
  }
  const std::string c_attr = name + ".c";
  const std::string m_attr = name + ".m";

  FlowGraph flow;
  FlowStateId first = 0;
  FlowStateId last = 0;
  append_rpc_legs(flow, c_attr, m_attr, phi, first, last);
  flow.add_transition(FlowGraph::kStart, first, Expr::constant(1.0));
  flow.add_transition(last, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      std::move(name),
      std::vector<FormalParam>{{"ip", "client-to-server data size"},
                               {"op", "server-to-client data size"}},
      std::move(flow),
      std::map<std::string, double>{{c_attr, ops_per_byte}, {m_attr, bytes_per_byte}});
}

ServicePtr make_local_processing_connector(std::string name) {
  // A deployment association, not a tangible artefact: Pfail = 0 (paper
  // section 3.1). Two formals so it is signature-compatible with lpc/rpc.
  return make_perfect_service(std::move(name), {"ip", "op"});
}

ServicePtr make_retrying_rpc_connector(std::string name, double ops_per_byte,
                                       double bytes_per_byte, std::size_t attempts,
                                       double phi) {
  if (attempts == 0) {
    throw InvalidArgument("retrying rpc connector '" + name +
                          "': attempts must be >= 1");
  }
  if (ops_per_byte < 0.0 || bytes_per_byte <= 0.0) {
    throw InvalidArgument("retrying rpc connector '" + name +
                          "': marshalling/wire constants out of range");
  }
  const std::string c_attr = name + ".c";
  const std::string m_attr = name + ".m";
  const Expr c = Expr::var(c_attr);
  const Expr total = Expr::var("ip") + Expr::var("op");

  // Modeled as one OR/sharing state with `attempts` identical requests for
  // the full exchange against a shared transport port. Sharing is the honest
  // dependency model here: every attempt reuses the same network and hosts,
  // so per the paper's OR-sharing result (eq. 12) an external transport
  // failure defeats every retry at once.
  FlowGraph flow;
  FlowState exchange;
  exchange.name = "exchange";
  exchange.completion = CompletionModel::kOr;
  exchange.dependency = DependencyModel::kSharing;
  for (std::size_t i = 0; i < attempts; ++i) {
    ServiceRequest attempt;
    attempt.port = "transport";
    attempt.actuals = {Expr::var("ip"), Expr::var("op")};
    attempt.label = "attempt " + std::to_string(i + 1);
    if (phi > 0.0) {
      attempt.internal = InternalFailure::per_operation(phi, c * total);
    }
    exchange.requests.push_back(std::move(attempt));
  }
  const FlowStateId sid = flow.add_state(std::move(exchange));
  flow.add_transition(FlowGraph::kStart, sid, Expr::constant(1.0));
  flow.add_transition(sid, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      std::move(name),
      std::vector<FormalParam>{{"ip", "client-to-server data size"},
                               {"op", "server-to-client data size"}},
      std::move(flow),
      std::map<std::string, double>{{c_attr, ops_per_byte}, {m_attr, bytes_per_byte}});
}

}  // namespace sorel::core
