#include "sorel/core/engine.hpp"

#include <array>
#include <cmath>
#include <string>
#include <utility>

#include "sorel/core/state_failure.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

namespace {

constexpr double kProbTolerance = 1e-9;

double clamp_probability(double p, const std::string& context) {
  if (!(p >= -kProbTolerance && p <= 1.0 + kProbTolerance) || std::isnan(p)) {
    throw NumericError(context + " evaluated to " + util::format_double(p) +
                       ", outside [0, 1]");
  }
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace

// ---------------------------------------------------------------------------
// Dependency sets
// ---------------------------------------------------------------------------

void ReliabilityEngine::DepSet::set(DepId id) {
  const std::size_t word = id / 64;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= std::uint64_t{1} << (id % 64);
}

void ReliabilityEngine::DepSet::merge(const DepSet& other) {
  if (other.words_.size() > words_.size()) words_.resize(other.words_.size(), 0);
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

bool ReliabilityEngine::DepSet::intersects(const DepSet& other) const noexcept {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

void ReliabilityEngine::rebuild_attribute_ids() {
  attribute_ids_.clear();
  binding_ids_.clear();
  expr_deps_.clear();
  DepId id = 0;
  for (const auto& [name, value] : base_env_.bindings()) {
    (void)value;
    attribute_ids_.emplace(name, id++);
  }
  next_binding_id_ = id;
}

// Union the attribute ids read by `e` into the open dependency frame. A
// formal parameter shadowing an attribute name records a spurious attribute
// dependency — over-invalidation is harmless, missing one is not.
void ReliabilityEngine::note_expr_deps(const expr::Expr& e) {
  if (!options_.track_dependencies || dep_stack_.empty()) return;
  const void* node = &e.node();
  auto it = expr_deps_.find(node);
  if (it == expr_deps_.end()) {
    DepSet deps;
    for (const std::string& variable : e.variables()) {
      const auto attr = attribute_ids_.find(variable);
      if (attr != attribute_ids_.end()) deps.set(attr->second);
    }
    it = expr_deps_.emplace(node, std::move(deps)).first;
  }
  if (it->second.any()) dep_stack_.back().merge(it->second);
}

void ReliabilityEngine::note_internal_failure_deps(const InternalFailure& internal) {
  switch (internal.kind()) {
    case InternalFailure::Kind::kNone:
      return;
    case InternalFailure::Kind::kConstant:
      note_expr_deps(internal.p());
      return;
    case InternalFailure::Kind::kPerOperation:
      note_expr_deps(internal.phi());
      note_expr_deps(internal.count());
      return;
  }
}

void ReliabilityEngine::note_binding_dep(const std::string& service,
                                         const std::string& port) {
  if (!options_.track_dependencies || dep_stack_.empty()) return;
  const auto [it, inserted] =
      binding_ids_.try_emplace({service, port}, next_binding_id_);
  if (inserted) ++next_binding_id_;
  dep_stack_.back().set(it->second);
}

std::size_t ReliabilityEngine::invalidate_intersecting(const DepSet& changed) {
  std::size_t dropped = 0;
  for (auto it = memo_.begin(); it != memo_.end();) {
    if (it->second.deps.intersects(changed)) {
      it = memo_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.memo_invalidated += dropped;
  return dropped;
}

std::size_t ReliabilityEngine::apply_attribute_deltas(
    const std::map<std::string, double>& deltas) {
  DepSet changed;
  bool any_change = false;
  for (const auto& [name, value] : deltas) {
    const auto it = attribute_ids_.find(name);
    if (it == attribute_ids_.end()) {
      throw LookupError("attribute '" + name +
                        "' is not defined in the assembly");
    }
    const auto current = base_env_.lookup(name);
    if (current && *current == value) continue;  // no-op delta
    base_env_.set(name, value);
    changed.set(it->second);
    any_change = true;
  }
  if (!any_change) return 0;
  if (!options_.track_dependencies) {
    const std::size_t dropped = memo_.size();
    clear_cache();
    return dropped;
  }
  return invalidate_intersecting(changed);
}

std::size_t ReliabilityEngine::invalidate_binding(std::string_view service,
                                                  std::string_view port) {
  if (!options_.track_dependencies) {
    const std::size_t dropped = memo_.size();
    clear_cache();
    return dropped;
  }
  const auto it =
      binding_ids_.find({std::string(service), std::string(port)});
  if (it == binding_ids_.end()) return 0;  // never consulted by a cached result
  DepSet changed;
  changed.set(it->second);
  return invalidate_intersecting(changed);
}

// Rows of the flow's transition matrix evaluated under `env`, indexed by
// flow state id. Validates stochasticity of every non-End row.
std::vector<std::vector<std::pair<FlowStateId, double>>>
ReliabilityEngine::evaluate_rows(const Service& service,
                                 const std::vector<double>& args,
                                 const expr::Env& env) {
  const FlowGraph& flow = *service.flow();
  std::vector<std::vector<std::pair<FlowStateId, double>>> rows(flow.state_count() +
                                                                2);
  const auto fill_row = [&](FlowStateId from) {
    double row_sum = 0.0;
    for (const auto& t : flow.transitions_from(from)) {
      charge_expr(1);
      note_expr_deps(t.probability);
      const double p = clamp_probability(
          t.probability.eval(env), "transition probability out of '" +
                                       flow.state_name(from) + "' in service '" +
                                       service.name() + "'");
      row_sum += p;
      rows[from].emplace_back(t.to, p);
    }
    if (std::fabs(row_sum - 1.0) > kProbTolerance) {
      std::string arg_list = "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) arg_list += ", ";
        arg_list += util::format_double(args[i]);
      }
      throw ModelError("service '" + service.name() + "': transitions out of '" +
                       flow.state_name(from) + "' sum to " +
                       util::format_double(row_sum) +
                       " (expected 1) for actual parameters " + arg_list + ")");
    }
  };
  fill_row(FlowGraph::kStart);
  for (const FlowStateId sid : flow.real_states()) fill_row(sid);
  return rows;
}

// States reachable from Start following positive-probability transitions.
std::vector<bool> ReliabilityEngine::reachable_states(
    const FlowGraph& flow,
    const std::vector<std::vector<std::pair<FlowStateId, double>>>& rows) {
  std::vector<bool> seen(flow.state_count() + 2, false);
  std::vector<FlowStateId> frontier{FlowGraph::kStart};
  seen[FlowGraph::kStart] = true;
  while (!frontier.empty()) {
    const FlowStateId id = frontier.back();
    frontier.pop_back();
    for (const auto& [to, p] : rows[id]) {
      if (p > 0.0 && !seen[to]) {
        seen[to] = true;
        frontier.push_back(to);
      }
    }
  }
  return seen;
}

ReliabilityEngine::ReliabilityEngine(const Assembly& assembly)
    : ReliabilityEngine(assembly, Options{}) {}

ReliabilityEngine::ReliabilityEngine(const Assembly& assembly, Options options)
    : base_env_(assembly.attribute_env()),
      assembly_(assembly),
      options_(std::move(options)) {
  assembly_.validate();
  rebuild_attribute_ids();
}

double ReliabilityEngine::pfail(std::string_view service_name,
                                const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  guard::Meter::Window window(&meter_);
  recursion_hit_ = false;
  cyclic_keys_.clear();
  try {
    return pfail_guarded(*svc, args);
  } catch (...) {
    // A throw mid-fixed-point leaves memo entries computed against interim
    // assumed values; scrub them so the engine stays consistent and can keep
    // serving queries (the graceful-degradation contract of BatchEvaluator /
    // CampaignRunner).
    if (recursion_hit_) {
      memo_.clear();
      assumed_.clear();
    }
    throw;
  }
}

double ReliabilityEngine::pfail_guarded(const Service& svc,
                                        const std::vector<double>& args) {
  double result = pfail_cached(svc, args);
  if (!recursion_hit_) return result;

  // Fixed-point mode: some evaluation consulted an assumed value. Re-run the
  // whole evaluation, feeding back the computed unreliabilities of the
  // cyclic keys, until they stabilise. The map F is monotone in each
  // assumed unreliability and bounded in [0,1]^n; starting from the optimistic
  // all-zero vector the damped iteration converges to the least fixed point.
  // The budget may tighten the iteration cap; hitting the budget's cap is a
  // BudgetExceeded (resource limit), hitting the engine option's own cap
  // stays a NumericError (non-convergence diagnosis).
  std::size_t cap = options_.max_fixpoint_iterations;
  bool budget_capped = false;
  if (meter_.armed() && meter_.budget().max_fixpoint_iterations != 0 &&
      meter_.budget().max_fixpoint_iterations < cap) {
    cap = static_cast<std::size_t>(meter_.budget().max_fixpoint_iterations);
    budget_capped = true;
  }
  for (std::size_t iter = 1; iter <= cap; ++iter) {
    stats_.fixpoint_iterations = iter;
    meter_.poll();
    double max_delta = 0.0;
    for (const Key& key : cyclic_keys_) {
      const auto it = memo_.find(key);
      if (it == memo_.end()) continue;  // not reached this round
      const double previous = assumed_.count(key) ? assumed_[key] : 0.0;
      const double updated =
          previous + options_.damping * (it->second.value - previous);
      max_delta = std::max(max_delta, std::fabs(updated - previous));
      assumed_[key] = updated;
    }
    if (max_delta < options_.fixpoint_tolerance) break;
    memo_.clear();
    result = pfail_cached(svc, args);
    if (iter == cap) {
      if (budget_capped) meter_.throw_fixpoint_limit(cap);
      throw NumericError("fixed-point evaluation of recursive assembly did not "
                         "converge within " +
                         std::to_string(cap) + " iterations");
    }
  }
  // The memo now holds values computed against near-converged assumptions;
  // drop it so later queries with fresh roots re-derive from scratch.
  memo_.clear();
  assumed_.clear();
  return result;
}

double ReliabilityEngine::reliability(std::string_view service_name,
                                      const std::vector<double>& args) {
  return 1.0 - pfail(service_name, args);
}

markov::Dtmc ReliabilityEngine::augmented_flow(std::string_view service_name,
                                               const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  const auto* composite = dynamic_cast<const CompositeService*>(svc.get());
  if (composite == nullptr) {
    throw InvalidArgument("augmented_flow: service '" + std::string(service_name) +
                          "' is simple (no flow to augment)");
  }
  guard::Meter::Window window(&meter_);
  markov::Dtmc chain;
  evaluate_composite(*composite, args, &chain);
  return chain;
}

// Absorption solve with guard checkpoints, re-raising solver NumericErrors
// with the service they belong to (a bare "Gauss-Seidel failed to converge"
// is useless in a thousand-job batch log). Guard errors pass through
// untouched.
markov::AbsorptionAnalysis ReliabilityEngine::solve_absorption(
    const markov::Dtmc& chain, const std::string& service_name) {
  try {
    return markov::AbsorptionAnalysis::compute(chain, options_.method, &meter_);
  } catch (const NumericError& e) {
    throw NumericError("service '" + service_name + "': " + e.what());
  }
}

ReliabilityEngine::FailureModes ReliabilityEngine::failure_modes(
    std::string_view service_name, const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  const auto* composite = dynamic_cast<const CompositeService*>(svc.get());
  if (composite == nullptr) {
    throw InvalidArgument("failure_modes: service '" + std::string(service_name) +
                          "' is simple (no flow)");
  }
  if (args.size() != composite->arity()) {
    throw InvalidArgument("service '" + composite->name() + "' expects " +
                          std::to_string(composite->arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  guard::Meter::Window window(&meter_);
  const FlowGraph& flow = *composite->flow();
  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(composite->formals()[i].name, args[i]);
  }

  const auto rows = evaluate_rows(*composite, args, env);
  const std::vector<bool> reachable = reachable_states(flow, rows);

  // Two-layer augmented chain: a clean and a contaminated copy of every
  // state. Layer 0 = clean, layer 1 = contaminated.
  markov::Dtmc chain;
  const std::size_t flow_ids = flow.state_count() + 2;
  std::vector<std::array<markov::StateId, 2>> to_chain(flow_ids);
  to_chain[FlowGraph::kStart] = {chain.add_state("Start"), 0};
  to_chain[FlowGraph::kEnd] = {chain.add_state("End"), chain.add_state("End?")};
  for (const FlowStateId sid : flow.real_states()) {
    const std::string& name = flow.state(sid).name;
    to_chain[sid] = {chain.add_state(name), chain.add_state(name + "?")};
  }
  const markov::StateId fail_state = chain.add_state("Fail");
  charge_states(chain.state_count());

  const auto emit = [&](FlowStateId from, int layer, double continue_scale,
                        int continue_layer) {
    for (const auto& [to, p] : rows[from]) {
      chain.add_transition(to_chain[from][layer], to_chain[to][continue_layer],
                           std::min(1.0, continue_scale * p));
    }
  };

  emit(FlowGraph::kStart, 0, 1.0, 0);
  for (const FlowStateId sid : flow.real_states()) {
    if (!reachable[sid]) {
      emit(sid, 0, 1.0, 0);
      emit(sid, 1, 1.0, 1);
      continue;
    }
    const FlowState& state = flow.state(sid);
    const double f = clamp_probability(
        state_pfail(*composite, state, env),
        "failure probability of state '" + state.name + "'");
    const double eps = state.undetected_failure_fraction;
    if (!(eps >= 0.0 && eps <= 1.0)) {
      throw ModelError("state '" + state.name +
                       "': undetected_failure_fraction outside [0, 1]");
    }
    // Clean layer: detected failure stops; silent failure continues
    // contaminated; success continues clean.
    if (f * (1.0 - eps) > 0.0) {
      chain.add_transition(to_chain[sid][0], fail_state, f * (1.0 - eps));
    }
    if (f * eps > 0.0) emit(sid, 0, f * eps, 1);
    emit(sid, 0, 1.0 - f, 0);
    // Contaminated layer: only detected failures matter; everything else
    // continues contaminated (further silent failures change nothing).
    if (f * (1.0 - eps) > 0.0) {
      chain.add_transition(to_chain[sid][1], fail_state, f * (1.0 - eps));
    }
    emit(sid, 1, 1.0 - f * (1.0 - eps), 1);
  }

  const auto analysis = solve_absorption(chain, composite->name());
  FailureModes modes;
  const markov::StateId start = to_chain[FlowGraph::kStart][0];
  modes.success = analysis.absorption_probability(start, to_chain[FlowGraph::kEnd][0]);
  modes.silent_failure =
      analysis.absorption_probability(start, to_chain[FlowGraph::kEnd][1]);
  modes.detected_failure = analysis.absorption_probability(start, fail_state);
  return modes;
}

void ReliabilityEngine::clear_cache() {
  memo_.clear();
  assumed_.clear();
}

void ReliabilityEngine::refresh_attributes() {
  base_env_ = assembly_.attribute_env();
  // The attribute set itself may have changed (Assembly::set_attribute can
  // introduce names), so the id universe — and the per-expression dep cache
  // keyed against it — must be rebuilt along with the full memo clear.
  rebuild_attribute_ids();
  clear_cache();
}

void ReliabilityEngine::set_pfail_overrides(
    std::map<std::string, double> overrides) {
  options_.pfail_overrides = std::move(overrides);
  clear_cache();
}

double ReliabilityEngine::pfail_cached(const Service& service,
                                       const std::vector<double>& args) {
  if (args.size() != service.arity()) {
    throw InvalidArgument("service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  // Overrides short-circuit everything, including memoisation.
  if (const auto it = options_.pfail_overrides.find(service.name());
      it != options_.pfail_overrides.end()) {
    return clamp_probability(it->second,
                             "pfail override for '" + service.name() + "'");
  }

  Key key{&service, args};
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    // Replay the subtree's logical cost so budgets fire at the same logical
    // total whether the entry is warm or cold.
    charge_memo_hit(it->second.cost);
    // The parent's result depends on everything this cached child read.
    if (options_.track_dependencies && !dep_stack_.empty()) {
      dep_stack_.back().merge(it->second.deps);
    }
    return it->second.value;
  }

  // Cycle? (Cyclic evaluations never leave memo entries behind — pfail()
  // clears the memo after every fixed-point solve — so the dependency
  // closure only has to be right for acyclic keys.)
  for (const Key& open : stack_) {
    if (open == key) {
      if (!options_.allow_recursion) {
        throw RecursionError(
            "service '" + service.name() +
            "' recursively requires itself (with identical actual parameters); "
            "enable Options::allow_recursion for fixed-point evaluation");
      }
      recursion_hit_ = true;
      cyclic_keys_.insert(key);
      const auto it = assumed_.find(key);
      return it == assumed_.end() ? 0.0 : it->second;
    }
  }

  stack_.push_back(key);
  dep_stack_.emplace_back();
  cost_stack_.emplace_back();
  double result;
  try {
    result = evaluate(service, args);
  } catch (...) {
    stack_.pop_back();
    dep_stack_.pop_back();
    cost_stack_.pop_back();
    throw;
  }
  stack_.pop_back();
  MemoEntry entry;
  entry.value = result;
  entry.deps = std::move(dep_stack_.back());
  dep_stack_.pop_back();
  entry.cost = cost_stack_.back();
  cost_stack_.pop_back();
  if (options_.track_dependencies && !dep_stack_.empty()) {
    dep_stack_.back().merge(entry.deps);  // close the transitive closure
  }
  if (!cost_stack_.empty()) {
    cost_stack_.back().add(entry.cost);  // parent pays for its children
  }
  memo_.emplace(std::move(key), std::move(entry));
  return result;
}

double ReliabilityEngine::evaluate(const Service& service,
                                   const std::vector<double>& args) {
  ++stats_.evaluations;
  charge_evaluation();
  if (const auto* simple = dynamic_cast<const SimpleService*>(&service)) {
    expr::Env env = base_env_;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env.set(simple->formals()[i].name, args[i]);
    }
    charge_expr(1);
    note_expr_deps(simple->pfail_expr());
    return clamp_probability(simple->pfail_expr().eval(env),
                             "Pfail of simple service '" + service.name() + "'");
  }
  const auto& composite = dynamic_cast<const CompositeService&>(service);
  return evaluate_composite(composite, args, nullptr);
}

double ReliabilityEngine::evaluate_composite(const CompositeService& service,
                                             const std::vector<double>& args,
                                             markov::Dtmc* export_chain) {
  if (args.size() != service.arity()) {
    throw InvalidArgument("service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  const FlowGraph& flow = *service.flow();

  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(service.formals()[i].name, args[i]);
  }

  // Evaluate all transition rows once, check stochasticity, and compute the
  // set of states reachable from Start under the *current* parameters.
  // Unreachable states contribute nothing to the absorption probability and
  // are skipped entirely — this also makes argument-decreasing recursion
  // (e.g. countdown(x) calling countdown(x-1) behind a probability-0 branch
  // at x = 0) bottom out naturally.
  const auto rows = evaluate_rows(service, args, env);
  const std::vector<bool> reachable = reachable_states(flow, rows);

  // Assemble the failure-augmented DTMC (paper section 3.2 / figure 5):
  // original states plus an absorbing Fail state; transitions out of state i
  // scaled by (1 - p(i, Fail)); Start exempt from failures.
  markov::Dtmc local_chain;
  markov::Dtmc& chain = export_chain ? *export_chain : local_chain;
  const std::size_t flow_ids = flow.state_count() + 2;
  std::vector<markov::StateId> to_chain(flow_ids);
  to_chain[FlowGraph::kStart] = chain.add_state("Start");
  to_chain[FlowGraph::kEnd] = chain.add_state("End");
  for (const FlowStateId sid : flow.real_states()) {
    to_chain[sid] = chain.add_state(flow.state(sid).name);
  }
  const markov::StateId fail_state = chain.add_state("Fail");
  // Charge the augmented chain's states before the per-state evaluation and
  // the absorption solve whose cost they drive.
  charge_states(chain.state_count());

  const auto emit_transitions = [&](FlowStateId from, double scale) {
    for (const auto& [to, p] : rows[from]) {
      // scale*p can exceed 1 by a few ulps when the state-failure DP rounds
      // f marginally below 0; clamp before the chain's strict range check.
      chain.add_transition(to_chain[from], to_chain[to], std::min(1.0, scale * p));
    }
  };

  emit_transitions(FlowGraph::kStart, 1.0);
  for (const FlowStateId sid : flow.real_states()) {
    if (!reachable[sid]) {
      // Keep the chain well-formed but do not evaluate the state's requests.
      emit_transitions(sid, 1.0);
      continue;
    }
    const FlowState& state = flow.state(sid);
    const double f = clamp_probability(
        state_pfail(service, state, env),
        "failure probability of state '" + state.name + "' in service '" +
            service.name() + "'");
    if (f > 0.0) chain.add_transition(to_chain[sid], fail_state, f);
    emit_transitions(sid, 1.0 - f);
  }

  // Eq. (3): Pfail(S, fp) = 1 − p*(Start, End).
  const auto analysis = solve_absorption(chain, service.name());
  const double p_end = analysis.absorption_probability(
      to_chain[FlowGraph::kStart], to_chain[FlowGraph::kEnd]);
  return clamp_probability(1.0 - p_end,
                           "Pfail of composite service '" + service.name() + "'");
}

double ReliabilityEngine::state_pfail(const CompositeService& service,
                                      const FlowState& state, const expr::Env& env) {
  std::vector<RequestFailure> failures;
  failures.reserve(state.requests.size());
  for (const ServiceRequest& request : state.requests) {
    RequestFailure rf;
    charge_expr(1);
    note_internal_failure_deps(request.internal);
    rf.internal = request.internal.pfail(env);
    rf.external = request_external_pfail(service, request, env);
    failures.push_back(rf);
  }
  return state_failure_probability(failures, state.completion, state.k,
                                   state.dependency);
}

double ReliabilityEngine::request_external_pfail(const CompositeService& service,
                                                 const ServiceRequest& request,
                                                 const expr::Env& env) {
  note_binding_dep(service.name(), request.port);
  const PortBinding& bind = assembly_.binding(service.name(), request.port);
  const ServicePtr& target = assembly_.service(bind.target);

  std::vector<double> child_args;
  child_args.reserve(request.actuals.size());
  for (const expr::Expr& actual : request.actuals) {
    charge_expr(1);
    note_expr_deps(actual);
    child_args.push_back(actual.eval(env));
  }
  const double service_pfail = pfail_cached(*target, child_args);

  double connector_pfail = 0.0;
  if (!bind.connector.empty()) {
    const ServicePtr& connector = assembly_.service(bind.connector);
    // Connector actuals may reference the caller's formals, attributes, and
    // the evaluated request actuals as arg0..argK.
    expr::Env conn_env = env;
    for (std::size_t i = 0; i < child_args.size(); ++i) {
      conn_env.set("arg" + std::to_string(i), child_args[i]);
    }
    const auto& actual_exprs = request.connector_actuals.empty()
                                   ? bind.connector_actuals
                                   : request.connector_actuals;
    std::vector<double> conn_args;
    conn_args.reserve(actual_exprs.size());
    for (const expr::Expr& actual : actual_exprs) {
      charge_expr(1);
      note_expr_deps(actual);
      conn_args.push_back(actual.eval(conn_env));
    }
    connector_pfail = pfail_cached(*connector, conn_args);
  }
  return external_failure_probability(service_pfail, connector_pfail);
}

}  // namespace sorel::core
