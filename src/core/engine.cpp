#include "sorel/core/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <utility>

#include "sorel/core/state_failure.hpp"
#include "sorel/sched/scheduler.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

namespace {

constexpr double kProbTolerance = 1e-9;

double clamp_probability(double p, const std::string& context) {
  if (!(p >= -kProbTolerance && p <= 1.0 + kProbTolerance) || std::isnan(p)) {
    throw NumericError(context + " evaluated to " + util::format_double(p) +
                       ", outside [0, 1]");
  }
  return std::min(1.0, std::max(0.0, p));
}

// Binding identity for shared-memo divergence checks. Expression nodes are
// immutable and shared across Assembly copies, so node addresses identify
// the connector-actual expressions exactly; a candidate binding built from
// fresh expressions conservatively reads as divergent.
memo::BindingSignature signature_of(const PortBinding& binding) {
  memo::BindingSignature sig;
  sig.target = binding.target;
  sig.connector = binding.connector;
  sig.actual_nodes.reserve(binding.connector_actuals.size());
  for (const expr::Expr& actual : binding.connector_actuals) {
    sig.actual_nodes.push_back(&actual.node());
  }
  return sig;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dependency ids
// ---------------------------------------------------------------------------

void ReliabilityEngine::rebuild_attribute_ids() {
  attribute_ids_.clear();
  binding_ids_.clear();
  expr_deps_.clear();
  DepId id = 0;
  for (const auto& [name, value] : base_env_.bindings()) {
    (void)value;
    attribute_ids_.emplace(name, id++);
  }
  // Binding ids are assigned eagerly from the assembly's sorted binding map:
  // every engine over the same universe then agrees on every id, which is
  // what lets DepSets stored in a SharedMemo be replayed into any consumer.
  // A binding first seen later (added to the assembly after construction)
  // still gets a lazy id via note_binding_dep, but marks the id space
  // non-portable and thereby disables sharing for this engine.
  for (const auto& [key, binding] : assembly_.bindings()) {
    (void)binding;
    binding_ids_.emplace(key, id++);
  }
  next_binding_id_ = id;
  eager_id_count_ = id;
  shared_ids_portable_ = true;
}

// Union the attribute ids read by `e` into the open dependency frame. A
// formal parameter shadowing an attribute name records a spurious attribute
// dependency — over-invalidation is harmless, missing one is not.
void ReliabilityEngine::note_expr_deps(const expr::Expr& e) {
  if (!options_.track_dependencies || dep_stack_.empty()) return;
  const void* node = &e.node();
  auto it = expr_deps_.find(node);
  if (it == expr_deps_.end()) {
    DepSet deps;
    for (const std::string& variable : e.variables()) {
      const auto attr = attribute_ids_.find(variable);
      if (attr != attribute_ids_.end()) deps.set(attr->second);
    }
    it = expr_deps_.emplace(node, std::move(deps)).first;
  }
  if (it->second.any()) dep_stack_.back().merge(it->second);
}

void ReliabilityEngine::note_internal_failure_deps(const InternalFailure& internal) {
  switch (internal.kind()) {
    case InternalFailure::Kind::kNone:
      return;
    case InternalFailure::Kind::kConstant:
      note_expr_deps(internal.p());
      return;
    case InternalFailure::Kind::kPerOperation:
      note_expr_deps(internal.phi());
      note_expr_deps(internal.count());
      return;
  }
}

void ReliabilityEngine::note_binding_dep(const std::string& service,
                                         const std::string& port) {
  if (!options_.track_dependencies || dep_stack_.empty()) return;
  const auto [it, inserted] =
      binding_ids_.try_emplace({service, port}, next_binding_id_);
  if (inserted) {
    ++next_binding_id_;
    // An id outside the eager universe is meaningless to other engines;
    // stop consulting/publishing the shared table rather than risk a DepSet
    // that lies about what it covers.
    shared_ids_portable_ = false;
  }
  dep_stack_.back().set(it->second);
}

std::size_t ReliabilityEngine::invalidate_intersecting(const DepSet& changed) {
  std::size_t dropped = 0;
  for (auto it = memo_.begin(); it != memo_.end();) {
    if (it->second.deps.intersects(changed)) {
      it = memo_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.memo_invalidated += dropped;
  return dropped;
}

std::size_t ReliabilityEngine::apply_attribute_deltas(
    const std::map<std::string, double>& deltas) {
  DepSet changed;
  bool any_change = false;
  for (const auto& [name, value] : deltas) {
    const auto it = attribute_ids_.find(name);
    if (it == attribute_ids_.end()) {
      throw LookupError("attribute '" + name +
                        "' is not defined in the assembly");
    }
    const auto current = base_env_.lookup(name);
    if (current && *current == value) continue;  // no-op delta
    base_env_.set(name, value);
    changed.set(it->second);
    any_change = true;
    // Track divergence from the shared base: a delta back to the base value
    // re-converges (shared entries become consultable again — the campaign
    // inject→revert round-trip), any other value diverges the attribute.
    if (shared_ && shared_universe_ok_) {
      const memo::Universe& u = shared_->universe();
      if (value == u.attribute_values[it->second]) {
        shared_divergence_.unset(it->second);
      } else {
        shared_divergence_.set(it->second);
      }
    }
  }
  if (!any_change) return 0;
  if (!options_.track_dependencies) {
    const std::size_t dropped = memo_.size();
    clear_cache();
    return dropped;
  }
  return invalidate_intersecting(changed);
}

std::size_t ReliabilityEngine::invalidate_binding(std::string_view service,
                                                  std::string_view port) {
  if (!options_.track_dependencies) {
    const std::size_t dropped = memo_.size();
    clear_cache();
    return dropped;
  }
  const auto it =
      binding_ids_.find({std::string(service), std::string(port)});
  if (it == binding_ids_.end()) return 0;  // not a binding of this assembly
  // Divergence from the shared base: compare the assembly's (already
  // rebound) wiring against the base signature — a rebind back to the
  // original binding re-converges.
  if (shared_ && shared_universe_ok_ && it->second >= attribute_ids_.size()) {
    const memo::Universe& u = shared_->universe();
    const std::size_t b = it->second - attribute_ids_.size();
    if (b < u.binding_signatures.size() &&
        signature_of(assembly_.binding(service, port)) ==
            u.binding_signatures[b]) {
      shared_divergence_.unset(it->second);
    } else {
      shared_divergence_.set(it->second);
    }
  }
  DepSet changed;
  changed.set(it->second);
  return invalidate_intersecting(changed);
}

// ---------------------------------------------------------------------------
// Shared cross-worker memoization
// ---------------------------------------------------------------------------

void ReliabilityEngine::attach_shared_memo(
    std::shared_ptr<memo::SharedMemo> shared) {
  shared_ = std::move(shared);
  shared_epoch_ = shared_ ? shared_->epoch() : 0;
  refresh_shared_state();
}

// Verify that this engine's id universe is exactly the table's base
// universe (same attribute names, same binding keys, same order — both
// sides enumerate sorted maps, so equality of the sequences is equality of
// every id), then recompute the divergence set from the engine's current
// attribute snapshot and the assembly's current wiring. Called at attach
// and whenever the universe may have changed (refresh_attributes).
void ReliabilityEngine::refresh_shared_state() {
  shared_universe_ok_ = false;
  shared_divergence_.clear();
  if (!shared_ || !options_.track_dependencies) return;
  const memo::Universe& u = shared_->universe();
  if (u.attribute_names.size() != attribute_ids_.size() ||
      u.binding_keys.size() != binding_ids_.size()) {
    return;
  }
  std::size_t i = 0;
  for (const auto& [name, id] : attribute_ids_) {
    (void)id;
    if (name != u.attribute_names[i++]) return;
  }
  i = 0;
  for (const auto& [key, id] : binding_ids_) {
    (void)id;
    if (key != u.binding_keys[i++]) return;
  }
  shared_universe_ok_ = true;
  for (std::size_t a = 0; a < u.attribute_names.size(); ++a) {
    const auto value = base_env_.lookup(u.attribute_names[a]);
    if (!value || *value != u.attribute_values[a]) {
      shared_divergence_.set(static_cast<DepId>(a));
    }
  }
  const std::size_t attr_count = u.attribute_names.size();
  for (std::size_t b = 0; b < u.binding_keys.size(); ++b) {
    const auto& [svc, port] = u.binding_keys[b];
    if (!(signature_of(assembly_.binding(svc, port)) ==
          u.binding_signatures[b])) {
      shared_divergence_.set(static_cast<DepId>(attr_count + b));
    }
  }
}

// Sharing is consulted per lookup so it can switch itself off (and back on)
// with the engine state: pfail overrides make DepSets unsound (an override
// dependency is never recorded), dependency tracking off leaves no DepSets
// at all, and a universe/id mismatch makes stored DepSets unreadable.
bool ReliabilityEngine::shared_usable() const noexcept {
  return shared_ != nullptr && shared_universe_ok_ && shared_ids_portable_ &&
         options_.track_dependencies && options_.pfail_overrides.empty();
}

void ReliabilityEngine::note_child(const Key& key, bool shared_backed) {
  if (!shared_ || child_stack_.empty()) return;
  child_stack_.back().push_back(key);
  if (!shared_backed) publishable_stack_.back() = 0;
}

// On a shared hit, materialise the entry's *whole* subtree into the local
// memo (walking the stored children keys, stopping at keys already cached
// locally). The local memo then holds exactly what a local evaluation would
// have produced — the closure property "a memoised parent implies memoised
// children" is preserved, so blast radii, pristine-memo sizes, and
// evaluations+shared_hits counts are bit-identical with sharing on or off.
// Any gap in the subtree (raced eviction, capped insert) abandons the hit
// before anything is charged or committed.
bool ReliabilityEngine::try_shared_hit(const Service& service, const Key& key,
                                       double* out) {
  memo::SharedEntry root;
  if (!shared_->lookup({service.name(), key.second}, shared_epoch_,
                       shared_divergence_, root)) {
    ++stats_.shared_misses;
    return false;
  }
  std::vector<std::pair<Key, memo::SharedEntry>> staged;
  std::set<Key> visited;
  std::vector<memo::MemoKey> pending(root.children.begin(),
                                     root.children.end());
  visited.insert(key);
  staged.emplace_back(key, std::move(root));
  while (!pending.empty()) {
    const memo::MemoKey child_key = std::move(pending.back());
    pending.pop_back();
    if (!assembly_.has_service(child_key.service)) {
      ++stats_.shared_misses;  // foreign universe leaked in; play it safe
      return false;
    }
    Key local_key{assembly_.service(child_key.service).get(), child_key.args};
    if (memo_.find(local_key) != memo_.end()) continue;  // already local
    if (!visited.insert(local_key).second) continue;
    memo::SharedEntry child;
    if (!shared_->lookup(child_key, shared_epoch_, shared_divergence_, child)) {
      ++stats_.shared_misses;  // incomplete subtree: evaluate locally instead
      return false;
    }
    pending.insert(pending.end(), child.children.begin(), child.children.end());
    staged.emplace_back(std::move(local_key), std::move(child));
  }
  // Budget first: a BudgetExceeded here must leave the memo untouched, so
  // the already-consistent state survives exactly as on a local-hit charge.
  charge_memo_hit(staged.front().second.cost);
  if (options_.track_dependencies && !dep_stack_.empty()) {
    dep_stack_.back().merge(staged.front().second.deps);
  }
  note_child(key, /*shared_backed=*/true);
  *out = staged.front().second.value;
  stats_.shared_hits += staged.size();
  for (auto& [local_key, shared_entry] : staged) {
    MemoEntry entry;
    entry.value = shared_entry.value;
    entry.deps = std::move(shared_entry.deps);
    entry.cost = shared_entry.cost;
    entry.shared_backed = true;
    memo_.emplace(std::move(local_key), std::move(entry));
  }
  return true;
}

bool ReliabilityEngine::maybe_publish_shared(
    const Service& service, const std::vector<double>& args,
    const MemoEntry& entry, const std::vector<Key>& children,
    bool children_shared) {
  // Publish gates, in addition to shared_usable():
  //  * every consulted child must itself be shared-backed (the subtree walk
  //    of try_shared_hit relies on children being present in the table);
  //  * no assumed (fixed-point) value may have been consulted anywhere in
  //    the current query — entries completed before the first assumed-value
  //    consult are provably exact, everything after is interim;
  //  * the closure must be divergence-free: only base-state results belong
  //    in the base-keyed table.
  if (!shared_usable() || !children_shared || recursion_hit_ ||
      entry.deps.intersects(shared_divergence_)) {
    return false;
  }
  memo::SharedEntry shared_entry;
  shared_entry.value = entry.value;
  shared_entry.cost = entry.cost;
  shared_entry.deps = entry.deps;
  std::set<Key> seen;
  shared_entry.children.reserve(children.size());
  for (const Key& child : children) {
    if (seen.insert(child).second) {
      shared_entry.children.push_back({child.first->name(), child.second});
    }
  }
  return shared_->insert({service.name(), args}, shared_epoch_,
                         std::move(shared_entry));
}

std::shared_ptr<memo::SharedMemo> make_shared_memo(
    const Assembly& assembly, memo::SharedMemo::Options options) {
  memo::Universe universe;
  const expr::Env env = assembly.attribute_env();
  universe.attribute_names.reserve(env.bindings().size());
  universe.attribute_values.reserve(env.bindings().size());
  for (const auto& [name, value] : env.bindings()) {
    universe.attribute_names.push_back(name);
    universe.attribute_values.push_back(value);
  }
  universe.binding_keys.reserve(assembly.bindings().size());
  universe.binding_signatures.reserve(assembly.bindings().size());
  for (const auto& [key, binding] : assembly.bindings()) {
    universe.binding_keys.push_back(key);
    universe.binding_signatures.push_back(signature_of(binding));
  }
  return std::make_shared<memo::SharedMemo>(std::move(universe), options);
}

// Rows of the flow's transition matrix evaluated under `env`, indexed by
// flow state id. Validates stochasticity of every non-End row.
std::vector<std::vector<std::pair<FlowStateId, double>>>
ReliabilityEngine::evaluate_rows(const Service& service,
                                 const std::vector<double>& args,
                                 const expr::Env& env) {
  const FlowGraph& flow = *service.flow();
  std::vector<std::vector<std::pair<FlowStateId, double>>> rows(flow.state_count() +
                                                                2);
  const auto fill_row = [&](FlowStateId from) {
    double row_sum = 0.0;
    for (const auto& t : flow.transitions_from(from)) {
      charge_expr(1);
      note_expr_deps(t.probability);
      const double p = clamp_probability(
          t.probability.eval(env), "transition probability out of '" +
                                       flow.state_name(from) + "' in service '" +
                                       service.name() + "'");
      row_sum += p;
      rows[from].emplace_back(t.to, p);
    }
    if (std::fabs(row_sum - 1.0) > kProbTolerance) {
      std::string arg_list = "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i) arg_list += ", ";
        arg_list += util::format_double(args[i]);
      }
      throw ModelError("service '" + service.name() + "': transitions out of '" +
                       flow.state_name(from) + "' sum to " +
                       util::format_double(row_sum) +
                       " (expected 1) for actual parameters " + arg_list + ")");
    }
  };
  fill_row(FlowGraph::kStart);
  for (const FlowStateId sid : flow.real_states()) fill_row(sid);
  return rows;
}

// States reachable from Start following positive-probability transitions.
std::vector<bool> ReliabilityEngine::reachable_states(
    const FlowGraph& flow,
    const std::vector<std::vector<std::pair<FlowStateId, double>>>& rows) {
  std::vector<bool> seen(flow.state_count() + 2, false);
  std::vector<FlowStateId> frontier{FlowGraph::kStart};
  seen[FlowGraph::kStart] = true;
  while (!frontier.empty()) {
    const FlowStateId id = frontier.back();
    frontier.pop_back();
    for (const auto& [to, p] : rows[id]) {
      if (p > 0.0 && !seen[to]) {
        seen[to] = true;
        frontier.push_back(to);
      }
    }
  }
  return seen;
}

ReliabilityEngine::ReliabilityEngine(const Assembly& assembly)
    : ReliabilityEngine(assembly, Options{}) {}

ReliabilityEngine::ReliabilityEngine(const Assembly& assembly, Options options)
    : base_env_(assembly.attribute_env()),
      assembly_(assembly),
      options_(std::move(options)) {
  assembly_.validate();
  rebuild_attribute_ids();
}

double ReliabilityEngine::pfail(std::string_view service_name,
                                const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  guard::Meter::Window window(&meter_);
  recursion_hit_ = false;
  cyclic_keys_.clear();
  if (shared_) shared_epoch_ = shared_->epoch();
  try {
    return pfail_guarded(*svc, args);
  } catch (...) {
    // A throw mid-fixed-point leaves memo entries computed against interim
    // assumed values; scrub them so the engine stays consistent and can keep
    // serving queries (the graceful-degradation contract of BatchEvaluator /
    // CampaignRunner).
    if (recursion_hit_) {
      memo_.clear();
      assumed_.clear();
    }
    throw;
  }
}

double ReliabilityEngine::pfail_guarded(const Service& svc,
                                        const std::vector<double>& args) {
  double result = pfail_cached(svc, args);
  if (!recursion_hit_) {
    stats_.fixpoint_sccs = 0;
    return result;
  }

  // SCC-ordered solve, opt-in. An armed guard keeps the global solver: the
  // budget's max_fixpoint_iterations cap is defined against the global
  // iteration count, not per-component counts.
  if (options_.parallel_fixpoint && !meter_.armed()) {
    return solve_fixpoint_sccs(svc, args);
  }

  // Fixed-point mode: some evaluation consulted an assumed value. Re-run the
  // whole evaluation, feeding back the computed unreliabilities of the
  // cyclic keys, until they stabilise. The map F is monotone in each
  // assumed unreliability and bounded in [0,1]^n; starting from the optimistic
  // all-zero vector the damped iteration converges to the least fixed point.
  // The budget may tighten the iteration cap; hitting the budget's cap is a
  // BudgetExceeded (resource limit), hitting the engine option's own cap
  // stays a NumericError (non-convergence diagnosis).
  std::size_t cap = options_.max_fixpoint_iterations;
  bool budget_capped = false;
  if (meter_.armed() && meter_.budget().max_fixpoint_iterations != 0 &&
      meter_.budget().max_fixpoint_iterations < cap) {
    cap = static_cast<std::size_t>(meter_.budget().max_fixpoint_iterations);
    budget_capped = true;
  }
  for (std::size_t iter = 1; iter <= cap; ++iter) {
    stats_.fixpoint_iterations = iter;
    meter_.poll();
    double max_delta = 0.0;
    for (const Key& key : cyclic_keys_) {
      const auto it = memo_.find(key);
      if (it == memo_.end()) continue;  // not reached this round
      const double previous = assumed_.count(key) ? assumed_[key] : 0.0;
      const double updated =
          previous + options_.damping * (it->second.value - previous);
      max_delta = std::max(max_delta, std::fabs(updated - previous));
      assumed_[key] = updated;
    }
    if (max_delta < options_.fixpoint_tolerance) break;
    memo_.clear();
    result = pfail_cached(svc, args);
    if (iter == cap) {
      if (budget_capped) meter_.throw_fixpoint_limit(cap);
      throw NumericError("fixed-point evaluation of recursive assembly did not "
                         "converge within " +
                         std::to_string(cap) + " iterations");
    }
  }
  // The memo now holds values computed against near-converged assumptions;
  // drop it so later queries with fresh roots re-derive from scratch.
  stats_.fixpoint_sccs = build_fixpoint_plan().groups.size();
  memo_.clear();
  assumed_.clear();
  return result;
}

ReliabilityEngine::FixpointPlan ReliabilityEngine::build_fixpoint_plan() const {
  // Static service graph: one node per service, an edge to every binding
  // target and connector. Cycles of (service, args) keys can only run along
  // these edges, so the condensation's partial order is a sound dependency
  // order for the dynamic key groups.
  const std::vector<std::string> names = assembly_.service_names();
  std::map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < names.size(); ++i) index[names[i]] = i;
  std::vector<std::vector<std::size_t>> adj(names.size());
  for (const auto& [key, binding] : assembly_.bindings()) {
    const std::size_t from = index.at(key.first);
    adj[from].push_back(index.at(binding.target));
    if (!binding.connector.empty()) {
      adj[from].push_back(index.at(binding.connector));
    }
  }

  // Iterative Tarjan. Components pop in callee-first order: every component
  // reachable from component c is assigned a smaller id than c.
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp(names.size(), kUnvisited);
  std::vector<std::size_t> low(names.size(), 0), disc(names.size(), kUnvisited);
  std::vector<char> on_stack(names.size(), 0);
  std::vector<std::size_t> scc_stack;
  std::size_t next_disc = 0, comp_count = 0;
  struct Frame {
    std::size_t node;
    std::size_t edge = 0;
  };
  std::vector<Frame> dfs;
  for (std::size_t root = 0; root < names.size(); ++root) {
    if (disc[root] != kUnvisited) continue;
    dfs.push_back({root});
    disc[root] = low[root] = next_disc++;
    scc_stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const std::size_t u = frame.node;
      if (frame.edge < adj[u].size()) {
        const std::size_t v = adj[u][frame.edge++];
        if (disc[v] == kUnvisited) {
          disc[v] = low[v] = next_disc++;
          scc_stack.push_back(v);
          on_stack[v] = 1;
          dfs.push_back({v});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        if (low[u] == disc[u]) {
          std::size_t v;
          do {
            v = scc_stack.back();
            scc_stack.pop_back();
            on_stack[v] = 0;
            comp[v] = comp_count;
          } while (v != u);
          ++comp_count;
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          low[dfs.back().node] = std::min(low[dfs.back().node], low[u]);
        }
      }
    }
  }

  // Bucket the dynamically discovered cyclic keys by component, ascending
  // component id == callees first.
  std::map<std::size_t, std::vector<Key>> buckets;
  for (const Key& key : cyclic_keys_) {
    buckets[comp.at(index.at(key.first->name()))].push_back(key);
  }
  FixpointPlan plan;
  std::map<std::size_t, std::size_t> group_of_comp;
  for (auto& [c, keys] : buckets) {
    group_of_comp[c] = plan.groups.size();
    std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
      const std::string_view an = a.first->name(), bn = b.first->name();
      return an != bn ? an < bn : a.second < b.second;
    });
    plan.groups.push_back({std::move(keys), {}});
  }
  if (plan.groups.size() <= 1) return plan;

  // Group dependencies: g depends on every cyclic component its own
  // component can reach in the condensation (direct or transitive — the
  // TaskGraph tolerates redundant edges).
  std::vector<std::vector<std::size_t>> comp_adj(comp_count);
  for (std::size_t u = 0; u < names.size(); ++u) {
    for (const std::size_t v : adj[u]) {
      if (comp[u] != comp[v]) comp_adj[comp[u]].push_back(comp[v]);
    }
  }
  for (auto& [c, group_id] : group_of_comp) {
    std::vector<char> seen(comp_count, 0);
    std::vector<std::size_t> frontier{c};
    seen[c] = 1;
    while (!frontier.empty()) {
      const std::size_t u = frontier.back();
      frontier.pop_back();
      for (const std::size_t v : comp_adj[u]) {
        if (seen[v]) continue;
        seen[v] = 1;
        frontier.push_back(v);
        const auto it = group_of_comp.find(v);
        if (it != group_of_comp.end()) {
          plan.groups[group_id].deps.push_back(it->second);
        }
      }
    }
    std::sort(plan.groups[group_id].deps.begin(),
              plan.groups[group_id].deps.end());
  }
  return plan;
}

double ReliabilityEngine::solve_fixpoint_sccs(const Service& svc,
                                              const std::vector<double>& args) {
  // The discovery pass (pfail_cached above) populated cyclic_keys_. Each
  // component's keys converge as their own block against already-converged
  // callee components; components that cannot reach one another run as
  // independent scheduler tasks. Every task evaluates from the *root* query
  // — reachability (hence the cycle-hit key set) is structural, so a task
  // can only ever consult assumed values that some group owns, and the
  // dependency edges guarantee those are converged before it starts.
  const FixpointPlan plan = build_fixpoint_plan();
  const std::size_t cap = options_.max_fixpoint_iterations;

  std::vector<std::map<Key, double>> converged(plan.groups.size());
  std::vector<Stats> group_stats(plan.groups.size());

  sched::TaskGraph graph;
  std::vector<sched::TaskGraph::TaskId> ids(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    ids[g] = graph.add([this, &plan, &converged, &group_stats, &svc, &args, cap,
                        g] {
      const FixpointPlan::Group& group = plan.groups[g];
      Options scratch_options = options_;
      scratch_options.parallel_fixpoint = false;
      ReliabilityEngine scratch(assembly_, scratch_options);
      for (const std::size_t dep : group.deps) {
        for (const auto& [key, value] : converged[dep]) {
          scratch.assumed_[key] = value;
        }
      }
      for (std::size_t iter = 1; iter <= cap; ++iter) {
        group_stats[g].fixpoint_iterations = iter;
        scratch.memo_.clear();
        scratch.pfail_cached(svc, args);
        double max_delta = 0.0;
        for (const Key& key : group.keys) {
          const auto it = scratch.memo_.find(key);
          if (it == scratch.memo_.end()) continue;  // not reached this round
          const auto assumed_it = scratch.assumed_.find(key);
          const double previous =
              assumed_it == scratch.assumed_.end() ? 0.0 : assumed_it->second;
          const double updated =
              previous + options_.damping * (it->second.value - previous);
          max_delta = std::max(max_delta, std::fabs(updated - previous));
          scratch.assumed_[key] = updated;
        }
        if (max_delta < options_.fixpoint_tolerance) break;
        if (iter == cap) {
          throw NumericError(
              "fixed-point evaluation of recursive assembly did not "
              "converge within " +
              std::to_string(cap) + " iterations");
        }
      }
      for (const Key& key : group.keys) {
        const auto it = scratch.assumed_.find(key);
        if (it != scratch.assumed_.end()) converged[g][key] = it->second;
      }
      group_stats[g].evaluations = scratch.stats_.evaluations;
      group_stats[g].memo_hits = scratch.stats_.memo_hits;
    });
    for (const std::size_t dep : plan.groups[g].deps) {
      graph.depend(ids[g], ids[dep]);
    }
  }
  sched::Scheduler::global().run(graph);

  // Accumulate in the fixed callee-first group order, so the counters are
  // identical whether the tasks ran inline, serial, or stolen across
  // workers.
  std::size_t total_iterations = 0;
  assumed_.clear();
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    stats_.evaluations += group_stats[g].evaluations;
    stats_.memo_hits += group_stats[g].memo_hits;
    total_iterations += group_stats[g].fixpoint_iterations;
    for (const auto& [key, value] : converged[g]) assumed_[key] = value;
  }
  stats_.fixpoint_iterations = total_iterations;
  stats_.fixpoint_sccs = plan.groups.size();

  // One evaluation against the converged assumptions yields the root value
  // (and consistent memo entries for the duration of the call); then drop
  // the fixed-point state, exactly like the global solver.
  memo_.clear();
  const double result = pfail_cached(svc, args);
  memo_.clear();
  assumed_.clear();
  return result;
}

double ReliabilityEngine::reliability(std::string_view service_name,
                                      const std::vector<double>& args) {
  return 1.0 - pfail(service_name, args);
}

markov::Dtmc ReliabilityEngine::augmented_flow(std::string_view service_name,
                                               const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  const auto* composite = dynamic_cast<const CompositeService*>(svc.get());
  if (composite == nullptr) {
    throw InvalidArgument("augmented_flow: service '" + std::string(service_name) +
                          "' is simple (no flow to augment)");
  }
  guard::Meter::Window window(&meter_);
  if (shared_) shared_epoch_ = shared_->epoch();
  markov::Dtmc chain;
  evaluate_composite(*composite, args, &chain);
  return chain;
}

// Absorption solve with guard checkpoints, re-raising solver NumericErrors
// with the service they belong to (a bare "Gauss-Seidel failed to converge"
// is useless in a thousand-job batch log). Guard errors pass through
// untouched.
markov::AbsorptionAnalysis ReliabilityEngine::solve_absorption(
    const markov::Dtmc& chain, const std::string& service_name) {
  try {
    return markov::AbsorptionAnalysis::compute(chain, options_.method, &meter_);
  } catch (const NumericError& e) {
    throw NumericError("service '" + service_name + "': " + e.what());
  }
}

ReliabilityEngine::FailureModes ReliabilityEngine::failure_modes(
    std::string_view service_name, const std::vector<double>& args) {
  const ServicePtr& svc = assembly_.service(service_name);
  const auto* composite = dynamic_cast<const CompositeService*>(svc.get());
  if (composite == nullptr) {
    throw InvalidArgument("failure_modes: service '" + std::string(service_name) +
                          "' is simple (no flow)");
  }
  if (args.size() != composite->arity()) {
    throw InvalidArgument("service '" + composite->name() + "' expects " +
                          std::to_string(composite->arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  guard::Meter::Window window(&meter_);
  if (shared_) shared_epoch_ = shared_->epoch();
  const FlowGraph& flow = *composite->flow();
  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(composite->formals()[i].name, args[i]);
  }

  const auto rows = evaluate_rows(*composite, args, env);
  const std::vector<bool> reachable = reachable_states(flow, rows);

  // Two-layer augmented chain: a clean and a contaminated copy of every
  // state. Layer 0 = clean, layer 1 = contaminated.
  markov::Dtmc chain;
  const std::size_t flow_ids = flow.state_count() + 2;
  std::vector<std::array<markov::StateId, 2>> to_chain(flow_ids);
  to_chain[FlowGraph::kStart] = {chain.add_state("Start"), 0};
  to_chain[FlowGraph::kEnd] = {chain.add_state("End"), chain.add_state("End?")};
  for (const FlowStateId sid : flow.real_states()) {
    const std::string& name = flow.state(sid).name;
    to_chain[sid] = {chain.add_state(name), chain.add_state(name + "?")};
  }
  const markov::StateId fail_state = chain.add_state("Fail");
  charge_states(chain.state_count());

  const auto emit = [&](FlowStateId from, int layer, double continue_scale,
                        int continue_layer) {
    for (const auto& [to, p] : rows[from]) {
      chain.add_transition(to_chain[from][layer], to_chain[to][continue_layer],
                           std::min(1.0, continue_scale * p));
    }
  };

  emit(FlowGraph::kStart, 0, 1.0, 0);
  for (const FlowStateId sid : flow.real_states()) {
    if (!reachable[sid]) {
      emit(sid, 0, 1.0, 0);
      emit(sid, 1, 1.0, 1);
      continue;
    }
    const FlowState& state = flow.state(sid);
    const double f = clamp_probability(
        state_pfail(*composite, state, env),
        "failure probability of state '" + state.name + "'");
    const double eps = state.undetected_failure_fraction;
    if (!(eps >= 0.0 && eps <= 1.0)) {
      throw ModelError("state '" + state.name +
                       "': undetected_failure_fraction outside [0, 1]");
    }
    // Clean layer: detected failure stops; silent failure continues
    // contaminated; success continues clean.
    if (f * (1.0 - eps) > 0.0) {
      chain.add_transition(to_chain[sid][0], fail_state, f * (1.0 - eps));
    }
    if (f * eps > 0.0) emit(sid, 0, f * eps, 1);
    emit(sid, 0, 1.0 - f, 0);
    // Contaminated layer: only detected failures matter; everything else
    // continues contaminated (further silent failures change nothing).
    if (f * (1.0 - eps) > 0.0) {
      chain.add_transition(to_chain[sid][1], fail_state, f * (1.0 - eps));
    }
    emit(sid, 1, 1.0 - f * (1.0 - eps), 1);
  }

  const auto analysis = solve_absorption(chain, composite->name());
  FailureModes modes;
  const markov::StateId start = to_chain[FlowGraph::kStart][0];
  modes.success = analysis.absorption_probability(start, to_chain[FlowGraph::kEnd][0]);
  modes.silent_failure =
      analysis.absorption_probability(start, to_chain[FlowGraph::kEnd][1]);
  modes.detected_failure = analysis.absorption_probability(start, fail_state);
  return modes;
}

void ReliabilityEngine::clear_cache() {
  memo_.clear();
  assumed_.clear();
}

void ReliabilityEngine::refresh_attributes() {
  base_env_ = assembly_.attribute_env();
  // The attribute set itself may have changed (Assembly::set_attribute can
  // introduce names), so the id universe — and the per-expression dep cache
  // keyed against it — must be rebuilt along with the full memo clear.
  rebuild_attribute_ids();
  clear_cache();
  // Ids may now mean different things; re-verify against the shared base
  // and recompute divergence from scratch.
  refresh_shared_state();
}

void ReliabilityEngine::set_pfail_overrides(
    std::map<std::string, double> overrides) {
  options_.pfail_overrides = std::move(overrides);
  clear_cache();
}

double ReliabilityEngine::pfail_cached(const Service& service,
                                       const std::vector<double>& args) {
  if (args.size() != service.arity()) {
    throw InvalidArgument("service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  // Overrides short-circuit everything, including memoisation.
  if (const auto it = options_.pfail_overrides.find(service.name());
      it != options_.pfail_overrides.end()) {
    return clamp_probability(it->second,
                             "pfail override for '" + service.name() + "'");
  }

  Key key{&service, args};
  if (const auto it = memo_.find(key); it != memo_.end()) {
    ++stats_.memo_hits;
    // Replay the subtree's logical cost so budgets fire at the same logical
    // total whether the entry is warm or cold.
    charge_memo_hit(it->second.cost);
    // The parent's result depends on everything this cached child read.
    if (options_.track_dependencies && !dep_stack_.empty()) {
      dep_stack_.back().merge(it->second.deps);
    }
    note_child(key, it->second.shared_backed);
    return it->second.value;
  }

  // Cycle? (Cyclic evaluations never leave memo entries behind — pfail()
  // clears the memo after every fixed-point solve — so the dependency
  // closure only has to be right for acyclic keys.)
  for (const Key& open : stack_) {
    if (open == key) {
      if (!options_.allow_recursion) {
        throw RecursionError(
            "service '" + service.name() +
            "' recursively requires itself (with identical actual parameters); "
            "enable Options::allow_recursion for fixed-point evaluation");
      }
      recursion_hit_ = true;
      cyclic_keys_.insert(key);
      const auto it = assumed_.find(key);
      return it == assumed_.end() ? 0.0 : it->second;
    }
  }

  // A shared cross-worker entry is as good as a local one: replay its cost
  // and deps, materialise its subtree locally, and return. Consulted after
  // the cycle check so a key that is cyclic *here* is handled by the
  // fixed-point machinery, never short-circuited by the table.
  if (shared_usable()) {
    double shared_value;
    if (try_shared_hit(service, key, &shared_value)) return shared_value;
  }

  stack_.push_back(key);
  dep_stack_.emplace_back();
  cost_stack_.emplace_back();
  child_stack_.emplace_back();
  publishable_stack_.push_back(1);
  double result;
  try {
    result = evaluate(service, args);
  } catch (...) {
    stack_.pop_back();
    dep_stack_.pop_back();
    cost_stack_.pop_back();
    child_stack_.pop_back();
    publishable_stack_.pop_back();
    throw;
  }
  stack_.pop_back();
  MemoEntry entry;
  entry.value = result;
  entry.deps = std::move(dep_stack_.back());
  dep_stack_.pop_back();
  entry.cost = cost_stack_.back();
  cost_stack_.pop_back();
  const std::vector<Key> children = std::move(child_stack_.back());
  child_stack_.pop_back();
  const bool children_shared = publishable_stack_.back() != 0;
  publishable_stack_.pop_back();
  if (options_.track_dependencies && !dep_stack_.empty()) {
    dep_stack_.back().merge(entry.deps);  // close the transitive closure
  }
  if (!cost_stack_.empty()) {
    cost_stack_.back().add(entry.cost);  // parent pays for its children
  }
  if (shared_) {
    entry.shared_backed =
        maybe_publish_shared(service, args, entry, children, children_shared);
    note_child(key, entry.shared_backed);
  }
  memo_.emplace(std::move(key), std::move(entry));
  return result;
}

double ReliabilityEngine::evaluate(const Service& service,
                                   const std::vector<double>& args) {
  ++stats_.evaluations;
  charge_evaluation();
  if (const auto* simple = dynamic_cast<const SimpleService*>(&service)) {
    expr::Env env = base_env_;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env.set(simple->formals()[i].name, args[i]);
    }
    charge_expr(1);
    note_expr_deps(simple->pfail_expr());
    return clamp_probability(simple->pfail_expr().eval(env),
                             "Pfail of simple service '" + service.name() + "'");
  }
  const auto& composite = dynamic_cast<const CompositeService&>(service);
  return evaluate_composite(composite, args, nullptr);
}

double ReliabilityEngine::evaluate_composite(const CompositeService& service,
                                             const std::vector<double>& args,
                                             markov::Dtmc* export_chain) {
  if (args.size() != service.arity()) {
    throw InvalidArgument("service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  const FlowGraph& flow = *service.flow();

  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(service.formals()[i].name, args[i]);
  }

  // Evaluate all transition rows once, check stochasticity, and compute the
  // set of states reachable from Start under the *current* parameters.
  // Unreachable states contribute nothing to the absorption probability and
  // are skipped entirely — this also makes argument-decreasing recursion
  // (e.g. countdown(x) calling countdown(x-1) behind a probability-0 branch
  // at x = 0) bottom out naturally.
  const auto rows = evaluate_rows(service, args, env);
  const std::vector<bool> reachable = reachable_states(flow, rows);

  // Assemble the failure-augmented DTMC (paper section 3.2 / figure 5):
  // original states plus an absorbing Fail state; transitions out of state i
  // scaled by (1 - p(i, Fail)); Start exempt from failures.
  markov::Dtmc local_chain;
  markov::Dtmc& chain = export_chain ? *export_chain : local_chain;
  const std::size_t flow_ids = flow.state_count() + 2;
  std::vector<markov::StateId> to_chain(flow_ids);
  to_chain[FlowGraph::kStart] = chain.add_state("Start");
  to_chain[FlowGraph::kEnd] = chain.add_state("End");
  for (const FlowStateId sid : flow.real_states()) {
    to_chain[sid] = chain.add_state(flow.state(sid).name);
  }
  const markov::StateId fail_state = chain.add_state("Fail");
  // Charge the augmented chain's states before the per-state evaluation and
  // the absorption solve whose cost they drive.
  charge_states(chain.state_count());

  const auto emit_transitions = [&](FlowStateId from, double scale) {
    for (const auto& [to, p] : rows[from]) {
      // scale*p can exceed 1 by a few ulps when the state-failure DP rounds
      // f marginally below 0; clamp before the chain's strict range check.
      chain.add_transition(to_chain[from], to_chain[to], std::min(1.0, scale * p));
    }
  };

  emit_transitions(FlowGraph::kStart, 1.0);
  for (const FlowStateId sid : flow.real_states()) {
    if (!reachable[sid]) {
      // Keep the chain well-formed but do not evaluate the state's requests.
      emit_transitions(sid, 1.0);
      continue;
    }
    const FlowState& state = flow.state(sid);
    const double f = clamp_probability(
        state_pfail(service, state, env),
        "failure probability of state '" + state.name + "' in service '" +
            service.name() + "'");
    if (f > 0.0) chain.add_transition(to_chain[sid], fail_state, f);
    emit_transitions(sid, 1.0 - f);
  }

  // Eq. (3): Pfail(S, fp) = 1 − p*(Start, End).
  const auto analysis = solve_absorption(chain, service.name());
  const double p_end = analysis.absorption_probability(
      to_chain[FlowGraph::kStart], to_chain[FlowGraph::kEnd]);
  return clamp_probability(1.0 - p_end,
                           "Pfail of composite service '" + service.name() + "'");
}

double ReliabilityEngine::state_pfail(const CompositeService& service,
                                      const FlowState& state, const expr::Env& env) {
  std::vector<RequestFailure> failures;
  failures.reserve(state.requests.size());
  for (const ServiceRequest& request : state.requests) {
    RequestFailure rf;
    charge_expr(1);
    note_internal_failure_deps(request.internal);
    rf.internal = request.internal.pfail(env);
    rf.external = request_external_pfail(service, request, env);
    failures.push_back(rf);
  }
  return state_failure_probability(failures, state.completion, state.k,
                                   state.dependency);
}

double ReliabilityEngine::request_external_pfail(const CompositeService& service,
                                                 const ServiceRequest& request,
                                                 const expr::Env& env) {
  note_binding_dep(service.name(), request.port);
  const PortBinding& bind = assembly_.binding(service.name(), request.port);
  const ServicePtr& target = assembly_.service(bind.target);

  std::vector<double> child_args;
  child_args.reserve(request.actuals.size());
  for (const expr::Expr& actual : request.actuals) {
    charge_expr(1);
    note_expr_deps(actual);
    child_args.push_back(actual.eval(env));
  }
  const double service_pfail = pfail_cached(*target, child_args);

  double connector_pfail = 0.0;
  if (!bind.connector.empty()) {
    const ServicePtr& connector = assembly_.service(bind.connector);
    // Connector actuals may reference the caller's formals, attributes, and
    // the evaluated request actuals as arg0..argK.
    expr::Env conn_env = env;
    for (std::size_t i = 0; i < child_args.size(); ++i) {
      conn_env.set("arg" + std::to_string(i), child_args[i]);
    }
    const auto& actual_exprs = request.connector_actuals.empty()
                                   ? bind.connector_actuals
                                   : request.connector_actuals;
    std::vector<double> conn_args;
    conn_args.reserve(actual_exprs.size());
    for (const expr::Expr& actual : actual_exprs) {
      charge_expr(1);
      note_expr_deps(actual);
      conn_args.push_back(actual.eval(conn_env));
    }
    connector_pfail = pfail_cached(*connector, conn_args);
  }
  return external_failure_probability(service_pfail, connector_pfail);
}

}  // namespace sorel::core
