#include "sorel/core/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/parallel_for.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace sorel::core {

namespace {

double sample_value(const AttributeDistribution& dist, util::Rng& rng) {
  double value = 0.0;
  switch (dist.kind) {
    case AttributeDistribution::Kind::kFixed:
      value = dist.a;
      break;
    case AttributeDistribution::Kind::kUniform:
      value = rng.uniform(dist.a, dist.b);
      break;
    case AttributeDistribution::Kind::kLogUniform:
      value = std::exp(rng.uniform(std::log(dist.a), std::log(dist.b)));
      break;
    case AttributeDistribution::Kind::kNormal:
      value = rng.normal(dist.a, dist.b);
      break;
    case AttributeDistribution::Kind::kLogNormal:
      value = std::exp(rng.normal(dist.a, dist.b));
      break;
  }
  return std::clamp(value, dist.min_value, dist.max_value);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

AttributeDistribution AttributeDistribution::fixed(double value) {
  AttributeDistribution d;
  d.kind = Kind::kFixed;
  d.a = value;
  d.min_value = -1e300;
  return d;
}

AttributeDistribution AttributeDistribution::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw InvalidArgument("uniform distribution needs lo <= hi");
  AttributeDistribution d;
  d.kind = Kind::kUniform;
  d.a = lo;
  d.b = hi;
  d.min_value = -1e300;
  return d;
}

AttributeDistribution AttributeDistribution::log_uniform(double lo, double hi) {
  if (!(0.0 < lo && lo <= hi)) {
    throw InvalidArgument("log-uniform distribution needs 0 < lo <= hi");
  }
  AttributeDistribution d;
  d.kind = Kind::kLogUniform;
  d.a = lo;
  d.b = hi;
  return d;
}

AttributeDistribution AttributeDistribution::normal(double mean, double stddev) {
  if (stddev < 0.0) throw InvalidArgument("normal distribution needs stddev >= 0");
  AttributeDistribution d;
  d.kind = Kind::kNormal;
  d.a = mean;
  d.b = stddev;
  return d;  // default clamp at [0, inf): rates/speeds are non-negative
}

AttributeDistribution AttributeDistribution::log_normal(double log_mean,
                                                        double log_stddev) {
  if (log_stddev < 0.0) {
    throw InvalidArgument("log-normal distribution needs stddev >= 0");
  }
  AttributeDistribution d;
  d.kind = Kind::kLogNormal;
  d.a = log_mean;
  d.b = log_stddev;
  return d;
}

UncertaintyResult propagate_uncertainty(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options, double reliability_target) {
  if (options.samples == 0) {
    throw InvalidArgument("propagate_uncertainty: need at least one sample");
  }
  const expr::Env known = assembly.attribute_env();
  for (const auto& [name, dist] : uncertain_attributes) {
    (void)dist;
    if (!known.contains(name)) {
      throw LookupError("uncertain attribute '" + name +
                        "' is not defined in the assembly");
    }
  }

  // Evaluate the samples on the runtime: sample i draws its attribute
  // values from the RNG substream (seed, i), so the draws are independent
  // of how the index range is chunked across workers. Each worker hoists
  // one Assembly copy and one engine (one validate()) for its whole chunk.
  std::vector<double> samples(options.samples);
  runtime::parallel_for(
      options.samples, options.threads,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        Assembly probe = assembly;
        ReliabilityEngine engine(probe);
        for (std::size_t i = begin; i < end; ++i) {
          util::Rng rng(util::substream_seed(options.seed, i));
          for (const auto& [name, dist] : uncertain_attributes) {
            probe.set_attribute(name, sample_value(dist, rng));
          }
          engine.refresh_attributes();
          samples[i] = engine.reliability(service_name, args);
        }
      });

  // Ordered reduction: fold in index order so the accumulated moments are
  // bit-identical for every thread count.
  UncertaintyResult result;
  std::size_t meets = 0;
  for (const double r : samples) {
    result.reliability.add(r);
    if (reliability_target > 0.0 && r >= reliability_target) ++meets;
  }
  std::sort(samples.begin(), samples.end());
  result.p05 = percentile(samples, 0.05);
  result.p50 = percentile(samples, 0.50);
  result.p95 = percentile(samples, 0.95);
  if (reliability_target > 0.0) {
    result.probability_meets_target =
        static_cast<double>(meets) / static_cast<double>(options.samples);
  }
  return result;
}

}  // namespace sorel::core
