#include "sorel/core/uncertainty.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include <memory>
#include <optional>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace sorel::core {

namespace {

double sample_value(const AttributeDistribution& dist, util::Rng& rng) {
  double value = 0.0;
  switch (dist.kind) {
    case AttributeDistribution::Kind::kFixed:
      value = dist.a;
      break;
    case AttributeDistribution::Kind::kUniform:
      value = rng.uniform(dist.a, dist.b);
      break;
    case AttributeDistribution::Kind::kLogUniform:
      value = std::exp(rng.uniform(std::log(dist.a), std::log(dist.b)));
      break;
    case AttributeDistribution::Kind::kNormal:
      value = rng.normal(dist.a, dist.b);
      break;
    case AttributeDistribution::Kind::kLogNormal:
      value = std::exp(rng.normal(dist.a, dist.b));
      break;
  }
  return std::clamp(value, dist.min_value, dist.max_value);
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void check_inputs(
    const Assembly& assembly, std::size_t samples,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes) {
  if (samples == 0) {
    throw InvalidArgument("propagate_uncertainty: need at least one sample");
  }
  const expr::Env known = assembly.attribute_env();
  for (const auto& [name, dist] : uncertain_attributes) {
    (void)dist;
    if (!known.contains(name)) {
      throw LookupError("uncertain attribute '" + name +
                        "' is not defined in the assembly");
    }
  }
}

// Sample i of the uncertainty loop: draw every uncertain attribute from the
// substream (seed, i) — in map order, so the draws are identical for every
// chunking — rebase the session onto `base_overlay` + the draw (draw wins),
// and evaluate. `base_overlay` carries a warm session's own deltas so that
// attributes outside the uncertain set keep their session values.
double evaluate_sample(EvalSession& session, std::string_view service_name,
                       const std::vector<double>& args,
                       const std::map<std::string, AttributeDistribution>&
                           uncertain_attributes,
                       const std::map<std::string, double>& base_overlay,
                       std::uint64_t seed, std::size_t index) {
  util::Rng rng(util::substream_seed(seed, index));
  std::map<std::string, double> target = base_overlay;
  for (const auto& [name, dist] : uncertain_attributes) {
    target[name] = sample_value(dist, rng);
  }
  session.rebase_attributes(target);
  return session.reliability(service_name, args);
}

// Ordered reduction: fold in index order so the accumulated moments are
// bit-identical for every thread count.
UncertaintyResult reduce_samples(std::vector<double> samples,
                                 double reliability_target) {
  UncertaintyResult result;
  std::size_t meets = 0;
  for (const double r : samples) {
    result.reliability.add(r);
    if (reliability_target > 0.0 && r >= reliability_target) ++meets;
  }
  std::sort(samples.begin(), samples.end());
  result.p05 = percentile(samples, 0.05);
  result.p50 = percentile(samples, 0.50);
  result.p95 = percentile(samples, 0.95);
  if (reliability_target > 0.0) {
    result.probability_meets_target =
        static_cast<double>(meets) / static_cast<double>(samples.size());
  }
  return result;
}

}  // namespace

AttributeDistribution AttributeDistribution::fixed(double value) {
  AttributeDistribution d;
  d.kind = Kind::kFixed;
  d.a = value;
  d.min_value = -1e300;
  return d;
}

AttributeDistribution AttributeDistribution::uniform(double lo, double hi) {
  if (!(lo <= hi)) throw InvalidArgument("uniform distribution needs lo <= hi");
  AttributeDistribution d;
  d.kind = Kind::kUniform;
  d.a = lo;
  d.b = hi;
  d.min_value = -1e300;
  return d;
}

AttributeDistribution AttributeDistribution::log_uniform(double lo, double hi) {
  if (!(0.0 < lo && lo <= hi)) {
    throw InvalidArgument("log-uniform distribution needs 0 < lo <= hi");
  }
  AttributeDistribution d;
  d.kind = Kind::kLogUniform;
  d.a = lo;
  d.b = hi;
  return d;
}

AttributeDistribution AttributeDistribution::normal(double mean, double stddev) {
  if (stddev < 0.0) throw InvalidArgument("normal distribution needs stddev >= 0");
  AttributeDistribution d;
  d.kind = Kind::kNormal;
  d.a = mean;
  d.b = stddev;
  return d;  // default clamp at [0, inf): rates/speeds are non-negative
}

AttributeDistribution AttributeDistribution::log_normal(double log_mean,
                                                        double log_stddev) {
  if (log_stddev < 0.0) {
    throw InvalidArgument("log-normal distribution needs stddev >= 0");
  }
  AttributeDistribution d;
  d.kind = Kind::kLogNormal;
  d.a = log_mean;
  d.b = log_stddev;
  return d;
}

UncertaintyResult propagate_uncertainty(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options, double reliability_target) {
  check_inputs(assembly, options.samples, uncertain_attributes);

  // Evaluate the samples on the runtime: sample i draws its attribute
  // values from the RNG substream (seed, i), so the draws are independent
  // of how the index range is chunked across workers. Each worker holds one
  // EvalSession over the *shared* assembly (one validate() per worker, no
  // assembly copy — deltas live in the session); per-sample rebasing
  // invalidates only the uncertain attributes' dependents in the memo.
  // The shared memo table holds the base-state closure plus whatever
  // sampled states resolve to base values for part of the tree; drawn
  // attributes are tracked as divergence, so two workers never trade
  // results that depend on their own draws.
  std::shared_ptr<memo::SharedMemo> shared_cache;
  if (options.shared_memo) shared_cache = make_shared_memo(assembly);
  std::vector<double> samples(options.samples);
  std::vector<std::optional<EvalSession>> sessions(
      runtime::for_each_slots(options.samples, options));
  runtime::for_each(
      options.samples, options, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        if (!sessions[slot]) {
          sessions[slot].emplace(assembly);
          if (shared_cache) sessions[slot]->attach_shared_memo(shared_cache);
        }
        EvalSession& session = *sessions[slot];
        for (std::size_t i = begin; i < end; ++i) {
          samples[i] = evaluate_sample(session, service_name, args,
                                       uncertain_attributes, {}, options.seed, i);
        }
      });

  return reduce_samples(std::move(samples), reliability_target);
}

UncertaintyResult propagate_uncertainty(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args,
    const std::map<std::string, AttributeDistribution>& uncertain_attributes,
    const UncertaintyOptions& options, double reliability_target) {
  check_inputs(session.assembly(), options.samples, uncertain_attributes);

  const std::map<std::string, double> entry_overlay = session.attribute_overlay();
  std::vector<double> samples(options.samples);
  try {
    for (std::size_t i = 0; i < options.samples; ++i) {
      samples[i] = evaluate_sample(session, service_name, args,
                                   uncertain_attributes, entry_overlay,
                                   options.seed, i);
    }
  } catch (...) {
    session.rebase_attributes(entry_overlay);
    throw;
  }
  session.rebase_attributes(entry_overlay);
  return reduce_samples(std::move(samples), reliability_target);
}

}  // namespace sorel::core
