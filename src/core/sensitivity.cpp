#include "sorel/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/parallel_for.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& attributes,
    double relative_step, std::size_t threads) {
  if (relative_step <= 0.0) {
    throw InvalidArgument("attribute_sensitivities: relative_step must be positive");
  }
  const expr::Env attr_env = assembly.attribute_env();
  std::vector<std::string> names = attributes;
  if (names.empty()) {
    for (const auto& [name, value] : attr_env.bindings()) names.push_back(name);
  }
  // Resolve every attribute up front so an unknown name throws the same
  // LookupError regardless of how the list is chunked across workers.
  std::vector<double> values;
  values.reserve(names.size());
  for (const std::string& attr : names) {
    const auto value = attr_env.lookup(attr);
    if (!value) {
      throw LookupError("attribute '" + attr + "' is not defined in the assembly");
    }
    values.push_back(*value);
  }

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  // Two engine evaluations per attribute, fanned out on the runtime. Each
  // worker hoists one mutable Assembly copy and one engine for its chunk;
  // perturbed attributes are restored before moving to the next one.
  std::vector<AttributeSensitivity> out(names.size());
  runtime::parallel_for(
      names.size(), threads,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        Assembly copy = assembly;
        ReliabilityEngine engine(copy);
        const auto probe = [&](const std::string& attr, double v) {
          copy.set_attribute(attr, v);
          engine.refresh_attributes();
          return engine.reliability(service_name, args);
        };
        for (std::size_t i = begin; i < end; ++i) {
          const std::string& attr = names[i];
          const double value = values[i];
          const double h = std::max(std::fabs(value), 1e-12) * relative_step;
          const double r_plus = probe(attr, value + h);
          const double r_minus = probe(attr, value - h);
          copy.set_attribute(attr, value);  // restore for the next attribute
          const double derivative = (r_plus - r_minus) / (2.0 * h);

          AttributeSensitivity s;
          s.attribute = attr;
          s.value = value;
          s.derivative = derivative;
          s.elasticity = base_reliability != 0.0
                             ? derivative * (value / base_reliability)
                             : 0.0;
          out[i] = std::move(s);
        }
      });

  std::sort(out.begin(), out.end(),
            [](const AttributeSensitivity& a, const AttributeSensitivity& b) {
              return std::fabs(a.derivative) > std::fabs(b.derivative);
            });
  return out;
}

std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components,
    std::size_t threads) {
  std::vector<std::string> names = components;
  if (names.empty()) {
    for (const std::string& n : assembly.service_names()) {
      if (n != service_name) names.push_back(n);
    }
  }
  for (const std::string& component : names) {
    if (!assembly.has_service(component)) {
      throw LookupError("component '" + component + "' is not a registered service");
    }
  }

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  // The perfect/failed probes only change engine-level pfail overrides, so
  // workers share the (read-only) assembly and reuse one engine per chunk.
  std::vector<ComponentImportance> out(names.size());
  runtime::parallel_for(
      names.size(), threads,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        ReliabilityEngine engine(assembly);
        const auto with_override = [&](const std::string& component,
                                       double pfail_value) {
          engine.set_pfail_overrides({{component, pfail_value}});
          return engine.reliability(service_name, args);
        };
        for (std::size_t i = begin; i < end; ++i) {
          const std::string& component = names[i];
          const double r_perfect = with_override(component, 0.0);
          const double r_failed = with_override(component, 1.0);

          ComponentImportance imp;
          imp.component = component;
          imp.birnbaum = r_perfect - r_failed;
          // Risk-achievement worth compares nominal unreliability against the
          // unreliability with the component pinned to failed.
          const double q_base = 1.0 - base_reliability;
          const double q_failed = 1.0 - r_failed;
          imp.risk_achievement = q_base > 0.0 ? q_failed / q_base
                                              : (q_failed > 0.0 ? 1e12 : 1.0);
          out[i] = std::move(imp);
        }
      });

  std::sort(out.begin(), out.end(),
            [](const ComponentImportance& a, const ComponentImportance& b) {
              return a.birnbaum > b.birnbaum;
            });
  return out;
}

}  // namespace sorel::core
