#include "sorel/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "sorel/core/engine.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& attributes,
    double relative_step) {
  if (relative_step <= 0.0) {
    throw InvalidArgument("attribute_sensitivities: relative_step must be positive");
  }
  const expr::Env attr_env = assembly.attribute_env();
  std::vector<std::string> names = attributes;
  if (names.empty()) {
    for (const auto& [name, value] : attr_env.bindings()) names.push_back(name);
  }

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  std::vector<AttributeSensitivity> out;
  out.reserve(names.size());
  for (const std::string& attr : names) {
    const auto value = attr_env.lookup(attr);
    if (!value) {
      throw LookupError("attribute '" + attr + "' is not defined in the assembly");
    }
    const double h = std::max(std::fabs(*value), 1e-12) * relative_step;

    // Central difference: each probe runs on a copy of the assembly-level
    // attribute table; the engine snapshots attributes at construction.
    const auto probe = [&](double v) {
      Assembly copy = assembly;
      copy.set_attribute(attr, v);
      ReliabilityEngine engine(copy);
      return engine.reliability(service_name, args);
    };
    const double r_plus = probe(*value + h);
    const double r_minus = probe(*value - h);
    const double derivative = (r_plus - r_minus) / (2.0 * h);

    AttributeSensitivity s;
    s.attribute = attr;
    s.value = *value;
    s.derivative = derivative;
    s.elasticity =
        base_reliability != 0.0 ? derivative * (*value / base_reliability) : 0.0;
    out.push_back(std::move(s));
  }

  std::sort(out.begin(), out.end(),
            [](const AttributeSensitivity& a, const AttributeSensitivity& b) {
              return std::fabs(a.derivative) > std::fabs(b.derivative);
            });
  return out;
}

std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components) {
  std::vector<std::string> names = components;
  if (names.empty()) {
    for (const std::string& n : assembly.service_names()) {
      if (n != service_name) names.push_back(n);
    }
  }

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  std::vector<ComponentImportance> out;
  out.reserve(names.size());
  for (const std::string& component : names) {
    if (!assembly.has_service(component)) {
      throw LookupError("component '" + component + "' is not a registered service");
    }
    const auto with_override = [&](double pfail_value) {
      ReliabilityEngine::Options options;
      options.pfail_overrides[component] = pfail_value;
      ReliabilityEngine engine(assembly, options);
      return engine.reliability(service_name, args);
    };
    const double r_perfect = with_override(0.0);
    const double r_failed = with_override(1.0);

    ComponentImportance imp;
    imp.component = component;
    imp.birnbaum = r_perfect - r_failed;
    // Risk-achievement worth compares nominal unreliability against the
    // unreliability with the component pinned to failed.
    const double q_base = 1.0 - base_reliability;
    const double q_failed = 1.0 - r_failed;
    imp.risk_achievement = q_base > 0.0 ? q_failed / q_base
                                        : (q_failed > 0.0 ? 1e12 : 1.0);
    out.push_back(std::move(imp));
  }

  std::sort(out.begin(), out.end(),
            [](const ComponentImportance& a, const ComponentImportance& b) {
              return a.birnbaum > b.birnbaum;
            });
  return out;
}

}  // namespace sorel::core
