#include "sorel/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "sorel/core/engine.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

namespace {

// Attribute list with every value resolved up front, so an unknown name
// throws the same LookupError regardless of how the list is chunked.
struct ResolvedAttributes {
  std::vector<std::string> names;
  std::vector<double> values;
};

ResolvedAttributes resolve_attributes(const Assembly& assembly,
                                      const std::vector<std::string>& attributes) {
  const expr::Env attr_env = assembly.attribute_env();
  ResolvedAttributes out;
  out.names = attributes;
  if (out.names.empty()) {
    for (const auto& [name, value] : attr_env.bindings()) {
      (void)value;
      out.names.push_back(name);
    }
  }
  out.values.reserve(out.names.size());
  for (const std::string& attr : out.names) {
    const auto value = attr_env.lookup(attr);
    if (!value) {
      throw LookupError("attribute '" + attr + "' is not defined in the assembly");
    }
    out.values.push_back(*value);
  }
  return out;
}

// Warm-session variant: derivatives are taken at the *session's* current
// values (assembly defaults plus every delta applied so far).
ResolvedAttributes resolve_attributes(EvalSession& session,
                                      const std::vector<std::string>& attributes) {
  ResolvedAttributes out = resolve_attributes(session.assembly(), attributes);
  for (std::size_t i = 0; i < out.names.size(); ++i) {
    out.values[i] = *session.attribute(out.names[i]);
  }
  return out;
}

// Central difference of one attribute through a session: two sparse deltas
// (±h) plus a restore — each invalidates only the attribute's dependents.
AttributeSensitivity probe_attribute(EvalSession& session,
                                     std::string_view service_name,
                                     const std::vector<double>& args,
                                     const std::string& attr, double value,
                                     double relative_step,
                                     double base_reliability) {
  const double h = std::max(std::fabs(value), 1e-12) * relative_step;
  session.set_attribute(attr, value + h);
  const double r_plus = session.reliability(service_name, args);
  session.set_attribute(attr, value - h);
  const double r_minus = session.reliability(service_name, args);
  session.set_attribute(attr, value);  // restore for the next attribute
  const double derivative = (r_plus - r_minus) / (2.0 * h);

  AttributeSensitivity s;
  s.attribute = attr;
  s.value = value;
  s.derivative = derivative;
  s.elasticity =
      base_reliability != 0.0 ? derivative * (value / base_reliability) : 0.0;
  return s;
}

std::vector<AttributeSensitivity> sort_by_derivative(
    std::vector<AttributeSensitivity> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const AttributeSensitivity& a, const AttributeSensitivity& b) {
              return std::fabs(a.derivative) > std::fabs(b.derivative);
            });
  return rows;
}

std::vector<std::string> resolve_components(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<std::string>& components) {
  std::vector<std::string> names = components;
  if (names.empty()) {
    for (const std::string& n : assembly.service_names()) {
      if (n != service_name) names.push_back(n);
    }
  }
  for (const std::string& component : names) {
    if (!assembly.has_service(component)) {
      throw LookupError("component '" + component + "' is not a registered service");
    }
  }
  return names;
}

ComponentImportance probe_component(EvalSession& session,
                                    std::string_view service_name,
                                    const std::vector<double>& args,
                                    const std::string& component,
                                    double base_reliability) {
  const auto with_override = [&](double pfail_value) {
    session.set_pfail_overrides({{component, pfail_value}});
    return session.reliability(service_name, args);
  };
  const double r_perfect = with_override(0.0);
  const double r_failed = with_override(1.0);

  ComponentImportance imp;
  imp.component = component;
  imp.birnbaum = r_perfect - r_failed;
  // Risk-achievement worth compares nominal unreliability against the
  // unreliability with the component pinned to failed.
  const double q_base = 1.0 - base_reliability;
  const double q_failed = 1.0 - r_failed;
  imp.risk_achievement =
      q_base > 0.0 ? q_failed / q_base : (q_failed > 0.0 ? 1e12 : 1.0);
  return imp;
}

std::vector<ComponentImportance> sort_by_birnbaum(
    std::vector<ComponentImportance> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const ComponentImportance& a, const ComponentImportance& b) {
              return a.birnbaum > b.birnbaum;
            });
  return rows;
}

}  // namespace

std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const SensitivityOptions& options,
    const std::vector<std::string>& attributes) {
  if (options.relative_step <= 0.0) {
    throw InvalidArgument("attribute_sensitivities: relative_step must be positive");
  }
  const ResolvedAttributes resolved = resolve_attributes(assembly, attributes);

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  // Two engine evaluations per attribute, fanned out on the runtime. Each
  // worker holds one session over the shared assembly; perturbed attributes
  // are restored before moving to the next one. The shared memo table pays
  // for the base closure once across all workers — each ±h probe diverges
  // in exactly one attribute, so everything outside that attribute's blast
  // radius replays from the table.
  std::shared_ptr<memo::SharedMemo> shared_cache;
  if (options.shared_memo) shared_cache = make_shared_memo(assembly);
  std::vector<AttributeSensitivity> out(resolved.names.size());
  std::vector<std::optional<EvalSession>> sessions(
      runtime::for_each_slots(resolved.names.size(), options));
  runtime::for_each(
      resolved.names.size(), options, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        if (!sessions[slot]) {
          sessions[slot].emplace(assembly);
          if (shared_cache) sessions[slot]->attach_shared_memo(shared_cache);
        }
        EvalSession& session = *sessions[slot];
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = probe_attribute(session, service_name, args, resolved.names[i],
                                   resolved.values[i], options.relative_step,
                                   base_reliability);
        }
      });

  return sort_by_derivative(std::move(out));
}

std::vector<AttributeSensitivity> attribute_sensitivities(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args, const SensitivityOptions& options,
    const std::vector<std::string>& attributes) {
  if (options.relative_step <= 0.0) {
    throw InvalidArgument("attribute_sensitivities: relative_step must be positive");
  }
  const ResolvedAttributes resolved = resolve_attributes(session, attributes);
  const double base_reliability = session.reliability(service_name, args);

  const std::map<std::string, double> entry_overlay = session.attribute_overlay();
  std::vector<AttributeSensitivity> out(resolved.names.size());
  try {
    for (std::size_t i = 0; i < resolved.names.size(); ++i) {
      out[i] = probe_attribute(session, service_name, args, resolved.names[i],
                               resolved.values[i], options.relative_step,
                               base_reliability);
    }
  } catch (...) {
    session.rebase_attributes(entry_overlay);
    throw;
  }
  session.rebase_attributes(entry_overlay);
  return sort_by_derivative(std::move(out));
}

std::vector<AttributeSensitivity> attribute_sensitivities(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& attributes,
    double relative_step, std::size_t threads) {
  SensitivityOptions options;
  options.relative_step = relative_step;
  options.threads = threads;
  return attribute_sensitivities(assembly, service_name, args, options, attributes);
}

std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const runtime::ExecPolicy& exec,
    const std::vector<std::string>& components) {
  const std::vector<std::string> names =
      resolve_components(assembly, service_name, components);

  ReliabilityEngine base_engine(assembly);
  const double base_reliability = base_engine.reliability(service_name, args);

  // The perfect/failed probes only change engine-level pfail overrides
  // (each probe installs its full override map, so slot state never leaks
  // between items), so workers share the (read-only) assembly and reuse
  // one session per slot.
  std::vector<ComponentImportance> out(names.size());
  std::vector<std::optional<EvalSession>> sessions(
      runtime::for_each_slots(names.size(), exec));
  runtime::for_each(
      names.size(), exec, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot) {
        if (!sessions[slot]) sessions[slot].emplace(assembly);
        EvalSession& session = *sessions[slot];
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = probe_component(session, service_name, args, names[i],
                                   base_reliability);
        }
      });

  return sort_by_birnbaum(std::move(out));
}

std::vector<ComponentImportance> component_importances(
    EvalSession& session, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components) {
  const std::vector<std::string> names =
      resolve_components(session.assembly(), service_name, components);

  std::map<std::string, double> entry_overrides = session.pfail_overrides();
  session.set_pfail_overrides({});
  const double base_reliability = session.reliability(service_name, args);

  std::vector<ComponentImportance> out(names.size());
  try {
    for (std::size_t i = 0; i < names.size(); ++i) {
      out[i] = probe_component(session, service_name, args, names[i],
                               base_reliability);
    }
  } catch (...) {
    session.set_pfail_overrides(std::move(entry_overrides));
    throw;
  }
  session.set_pfail_overrides(std::move(entry_overrides));
  return sort_by_birnbaum(std::move(out));
}

std::vector<ComponentImportance> component_importances(
    const Assembly& assembly, std::string_view service_name,
    const std::vector<double>& args, const std::vector<std::string>& components,
    std::size_t threads) {
  runtime::ExecPolicy exec;
  exec.threads = threads;
  return component_importances(assembly, service_name, args, exec, components);
}

}  // namespace sorel::core
