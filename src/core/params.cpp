#include "sorel/core/params.hpp"

namespace sorel::core {

std::vector<FormalParam> formals(std::initializer_list<std::string> names) {
  std::vector<FormalParam> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back({n, ""});
  return out;
}

}  // namespace sorel::core
