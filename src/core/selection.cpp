#include "sorel/core/selection.hpp"

#include <algorithm>
#include <string>

#include "sorel/core/engine.hpp"
#include "sorel/core/performance.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

namespace {

std::string default_label(const PortBinding& binding) {
  std::string label = binding.target;
  if (!binding.connector.empty()) label += " via " + binding.connector;
  return label;
}

}  // namespace

std::vector<RankedAssembly> rank_assemblies(const Assembly& assembly,
                                            std::string_view service_name,
                                            const std::vector<double>& args,
                                            const std::vector<SelectionPoint>& points,
                                            const SelectionObjective& objective,
                                            std::size_t max_combinations) {
  if (points.empty()) {
    throw InvalidArgument("rank_assemblies: no selection points given");
  }
  std::size_t combinations = 1;
  for (const SelectionPoint& point : points) {
    if (point.candidates.empty()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            " has no candidates");
    }
    if (!point.labels.empty() && point.labels.size() != point.candidates.size()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            ": labels must parallel candidates");
    }
    if (combinations > max_combinations / point.candidates.size()) {
      throw InvalidArgument(
          "selection space exceeds " + std::to_string(max_combinations) +
          " combinations; prune candidate lists or raise the bound");
    }
    combinations *= point.candidates.size();
  }

  std::vector<RankedAssembly> ranking;
  ranking.reserve(combinations);
  std::vector<std::size_t> choice(points.size(), 0);
  for (std::size_t combo = 0; combo < combinations; ++combo) {
    // Decode the combination index into per-point choices (mixed radix).
    std::size_t rest = combo;
    for (std::size_t i = 0; i < points.size(); ++i) {
      choice[i] = rest % points[i].candidates.size();
      rest /= points[i].candidates.size();
    }

    Assembly wired = assembly;
    RankedAssembly entry;
    entry.choice = choice;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SelectionPoint& point = points[i];
      const PortBinding& binding = point.candidates[choice[i]];
      wired.bind(point.service, point.port, binding);
      entry.labels.push_back(point.labels.empty() ? default_label(binding)
                                                  : point.labels[choice[i]]);
    }

    ReliabilityEngine engine(wired);
    entry.reliability = engine.reliability(service_name, args);
    if (entry.reliability < objective.min_reliability) continue;
    if (objective.time_weight != 0.0) {
      PerformanceEngine perf(wired);
      entry.expected_duration = perf.expected_duration(service_name, args);
    }
    entry.score =
        entry.reliability - objective.time_weight * entry.expected_duration;
    ranking.push_back(std::move(entry));
  }

  std::sort(ranking.begin(), ranking.end(),
            [](const RankedAssembly& a, const RankedAssembly& b) {
              return a.score > b.score;
            });
  return ranking;
}

RankedAssembly select_best(const Assembly& assembly, std::string_view service_name,
                           const std::vector<double>& args,
                           const std::vector<SelectionPoint>& points,
                           const SelectionObjective& objective) {
  auto ranking = rank_assemblies(assembly, service_name, args, points, objective);
  if (ranking.empty()) {
    throw InvalidArgument(
        "select_best: every candidate combination fell below the reliability "
        "floor");
  }
  return std::move(ranking.front());
}

}  // namespace sorel::core
