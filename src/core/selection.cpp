#include "sorel/core/selection.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "sorel/core/performance.hpp"
#include "sorel/core/session.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/guard/meter.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

namespace {

// Largest combination index exact in an IEEE double — shard reports carry
// indices as JSON numbers, so the whole space must stay below this.
constexpr std::size_t kMaxSelectionSpace = std::size_t{1} << 53;

std::string default_label(const PortBinding& binding) {
  std::string label = binding.target;
  if (!binding.connector.empty()) label += " via " + binding.connector;
  return label;
}

// Validate the points and return the cartesian-product size, throwing the
// shared "selection space exceeds ..." diagnostic when the running product
// crosses `cap` (which also makes the computation overflow-safe).
std::size_t checked_space_size(const std::vector<SelectionPoint>& points,
                               std::size_t cap) {
  if (points.empty()) {
    throw InvalidArgument("rank_assemblies: no selection points given");
  }
  std::size_t combinations = 1;
  for (const SelectionPoint& point : points) {
    if (point.candidates.empty()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            " has no candidates");
    }
    if (!point.labels.empty() && point.labels.size() != point.candidates.size()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            ": labels must parallel candidates");
    }
    if (combinations > cap / point.candidates.size()) {
      throw InvalidArgument(
          "selection space exceeds " + std::to_string(cap) +
          " combinations; prune candidate lists or raise the bound");
    }
    combinations *= point.candidates.size();
  }
  return combinations;
}

// One worker slot: a mutable Assembly copy (bind() mutates, so the shared
// assembly cannot back the sessions here) and one EvalSession — one
// validate() per slot, not per combination. Rebinding a selection point
// drops only the memoised results that consulted that binding, so results
// for subtrees unaffected by the choice survive across combinations.
struct Slot {
  explicit Slot(const Assembly& base) : wired(base) {}
  Assembly wired;
  std::optional<EvalSession> session;
  std::optional<PerformanceEngine> perf;
  std::vector<std::size_t> choice;
  std::vector<std::size_t> next;
};

// Physical work a slot performed before being destroyed (on a keep-going
// error the slot is rebuilt fresh, so its engine counters must be banked
// first). One accumulator per slot id — no cross-thread sharing.
struct SlotPhysical {
  std::uint64_t evaluations = 0;
  std::uint64_t shared_hits = 0;
  std::uint64_t shared_misses = 0;

  void bank(const Slot& slot) {
    if (!slot.session) return;
    const auto& stats = slot.session->stats();
    evaluations += stats.evaluations;
    shared_hits += stats.shared_hits;
    shared_misses += stats.shared_misses;
  }
};

// The shared worker over the global combination range [begin, end).
//
// Under work stealing a slot may receive non-contiguous blocks of
// combinations; the mixed-radix diff rewires from *whatever the slot's
// assembly is currently bound to* straight to the block's first
// combination, so results never depend on which blocks a slot saw (the
// determinism grid in tests/sched pins this).
//
// The shared memo table is built over the *original* assembly: workers
// start diverged at the selection points (their copies are re-wired), but
// every subtree that never consults a selection point resolves to the base
// state and is evaluated once per selection instead of once per combination
// per worker. A selection point whose port is unbound in the original
// assembly disables sharing on attach (universe mismatch) — conservative
// and bit-identical either way.
//
// keep_going: record per-combination errors as structured outcomes (the
// failing slot is torn down and rebuilt so later combinations never observe
// its state) and arm the guard meter so outcomes carry logical-cost
// counters. With keep_going false the first error propagates out of
// runtime::for_each (which rethrows the lowest-global-index one) and the
// meter stays unarmed — the historical rank_assemblies behaviour, byte for
// byte.
RangeEvaluation run_range(const Assembly& assembly, std::string_view service_name,
                          const std::vector<double>& args,
                          const std::vector<SelectionPoint>& points,
                          const SelectionOptions& options, std::size_t begin,
                          std::size_t end, bool keep_going) {
  const SelectionObjective& objective = options.objective;
  const std::size_t count = end - begin;

  std::shared_ptr<memo::SharedMemo> shared_cache;
  if (options.shared_memo) {
    shared_cache = options.shared_cache ? options.shared_cache
                                        : make_shared_memo(assembly);
  }

  RangeEvaluation result;
  result.outcomes.resize(count);

  const std::size_t slot_count = runtime::for_each_slots(count, options);
  std::vector<std::unique_ptr<Slot>> slots(slot_count);
  std::vector<SlotPhysical> physical(slot_count);

  const auto decode = [&](std::size_t combo, std::vector<std::size_t>& out) {
    std::size_t rest = combo;  // mixed radix, least significant first
    for (std::size_t i = 0; i < points.size(); ++i) {
      out[i] = rest % points[i].candidates.size();
      rest /= points[i].candidates.size();
    }
  };
  const auto bind_point = [&](Slot& slot, std::size_t i) {
    slot.wired.bind(points[i].service, points[i].port,
                    points[i].candidates[slot.choice[i]]);
  };
  // Rewire an initialized slot from its current combination to `combo`:
  // rebind exactly the selection points whose digit changed.
  const auto rewire = [&](Slot& slot, std::size_t combo) {
    decode(combo, slot.next);
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (slot.next[i] != slot.choice[i]) {
        slot.choice[i] = slot.next[i];
        bind_point(slot, i);
        slot.session->invalidate_binding(points[i].service, points[i].port);
        changed = true;
      }
    }
    if (changed && slot.perf) slot.perf->clear_cache();
  };
  const auto make_slot = [&](std::size_t combo) {
    auto fresh = std::make_unique<Slot>(assembly);
    fresh->choice.resize(points.size());
    fresh->next.resize(points.size());
    decode(combo, fresh->choice);
    for (std::size_t i = 0; i < points.size(); ++i) {
      bind_point(*fresh, i);
    }
    fresh->session.emplace(fresh->wired);
    if (shared_cache) fresh->session->attach_shared_memo(shared_cache);
    if (keep_going) {
      // Arm the guard meter without imposing limits (unlimited budget, a
      // never-cancelled token) so every outcome carries logical counters.
      static const auto kMeterOnly = std::make_shared<const guard::CancelToken>();
      fresh->session->set_budget(guard::Budget{}, kMeterOnly);
    }
    if (objective.time_weight != 0.0) fresh->perf.emplace(fresh->wired);
    return fresh;
  };

  runtime::for_each(
      count, options, /*grain=*/1,
      [&](std::size_t local_begin, std::size_t local_end, std::size_t slot_id) {
        for (std::size_t local = local_begin; local < local_end; ++local) {
          const std::size_t combo = begin + local;
          CombinationOutcome& outcome = result.outcomes[local];
          outcome.combination = combo;
          // Choice and labels are pure mixed-radix facts — fill them before
          // touching the slot so even an error outcome identifies its
          // wiring.
          outcome.choice.resize(points.size());
          decode(combo, outcome.choice);
          outcome.labels.reserve(points.size());
          for (std::size_t i = 0; i < points.size(); ++i) {
            outcome.labels.push_back(
                points[i].labels.empty()
                    ? default_label(points[i].candidates[outcome.choice[i]])
                    : points[i].labels[outcome.choice[i]]);
          }
          try {
            if (!slots[slot_id]) {
              slots[slot_id] = make_slot(combo);
            } else {
              rewire(*slots[slot_id], combo);
            }
            Slot& slot = *slots[slot_id];
            outcome.reliability = slot.session->reliability(service_name, args);
            if (keep_going) {
              const guard::Meter& meter = slot.session->engine().meter();
              outcome.evaluations = meter.evaluations();
              outcome.states = meter.states();
              outcome.expr_evaluations = meter.expr_evaluations();
            }
            outcome.ok = true;
            if (outcome.reliability >= objective.min_reliability) {
              outcome.kept = true;
              if (slot.perf) {
                outcome.expected_duration =
                    slot.perf->expected_duration(service_name, args);
              }
              outcome.score = outcome.reliability -
                              objective.time_weight * outcome.expected_duration;
            }
          } catch (const std::exception& e) {
            if (!keep_going) throw;
            outcome.ok = false;
            outcome.kept = false;
            outcome.reliability = 0.0;
            outcome.expected_duration = 0.0;
            outcome.score = 0.0;
            outcome.evaluations = 0;
            outcome.states = 0;
            outcome.expr_evaluations = 0;
            outcome.error = sorel::error_category(e);
            outcome.message = e.what();
            // The slot may be mid-query or half-rewired: bank its physical
            // counters and rebuild fresh for the next combination so
            // results never depend on the poisoned state.
            if (slots[slot_id]) {
              physical[slot_id].bank(*slots[slot_id]);
              slots[slot_id].reset();
            }
          }
        }
      });

  for (std::size_t slot_id = 0; slot_id < slot_count; ++slot_id) {
    if (slots[slot_id]) physical[slot_id].bank(*slots[slot_id]);
    result.physical_evaluations += physical[slot_id].evaluations;
    result.shared_hits += physical[slot_id].shared_hits;
    result.shared_misses += physical[slot_id].shared_misses;
  }
  return result;
}

}  // namespace

std::size_t selection_space_size(const std::vector<SelectionPoint>& points) {
  return checked_space_size(points, kMaxSelectionSpace);
}

RangeEvaluation evaluate_combination_range(const Assembly& assembly,
                                           std::string_view service_name,
                                           const std::vector<double>& args,
                                           const std::vector<SelectionPoint>& points,
                                           const SelectionOptions& options,
                                           std::size_t begin, std::size_t end) {
  const std::size_t total = selection_space_size(points);
  if (begin > end || end > total) {
    throw InvalidArgument("evaluate_combination_range: range [" +
                          std::to_string(begin) + ", " + std::to_string(end) +
                          ") outside the selection space of " +
                          std::to_string(total) + " combinations");
  }
  if (end - begin > options.max_combinations) {
    throw InvalidArgument(
        "combination range holds " + std::to_string(end - begin) +
        " combinations, exceeding the per-shard bound of " +
        std::to_string(options.max_combinations) +
        "; split across more shards or raise the bound");
  }
  return run_range(assembly, service_name, args, points, options, begin, end,
                   /*keep_going=*/true);
}

std::vector<RankedAssembly> rank_assemblies(const Assembly& assembly,
                                            std::string_view service_name,
                                            const std::vector<double>& args,
                                            const std::vector<SelectionPoint>& points,
                                            const SelectionOptions& options) {
  const std::size_t combinations =
      checked_space_size(points, options.max_combinations);
  RangeEvaluation range = run_range(assembly, service_name, args, points,
                                    options, 0, combinations,
                                    /*keep_going=*/false);

  // Ordered reduction: outcomes arrive in combination order, so the stable
  // sort below breaks score ties by combination index — the same total
  // order the sorel::dist shard merger produces — at every thread count.
  std::vector<RankedAssembly> ranking;
  ranking.reserve(combinations);
  for (CombinationOutcome& outcome : range.outcomes) {
    if (!outcome.kept) continue;
    RankedAssembly entry;
    entry.choice = std::move(outcome.choice);
    entry.labels = std::move(outcome.labels);
    entry.reliability = outcome.reliability;
    entry.expected_duration = outcome.expected_duration;
    entry.score = outcome.score;
    ranking.push_back(std::move(entry));
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const RankedAssembly& a, const RankedAssembly& b) {
                     return a.score > b.score;
                   });
  return ranking;
}

std::vector<RankedAssembly> rank_assemblies(const Assembly& assembly,
                                            std::string_view service_name,
                                            const std::vector<double>& args,
                                            const std::vector<SelectionPoint>& points,
                                            const SelectionObjective& objective,
                                            std::size_t max_combinations,
                                            std::size_t threads) {
  SelectionOptions options;
  options.objective = objective;
  options.max_combinations = max_combinations;
  options.threads = threads;
  return rank_assemblies(assembly, service_name, args, points, options);
}

RankedAssembly select_best(const Assembly& assembly, std::string_view service_name,
                           const std::vector<double>& args,
                           const std::vector<SelectionPoint>& points,
                           const SelectionObjective& objective) {
  auto ranking = rank_assemblies(assembly, service_name, args, points, objective);
  if (ranking.empty()) {
    throw InvalidArgument(
        "select_best: every candidate combination fell below the reliability "
        "floor");
  }
  return std::move(ranking.front());
}

}  // namespace sorel::core
