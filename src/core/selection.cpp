#include "sorel/core/selection.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include <memory>

#include "sorel/core/performance.hpp"
#include "sorel/core/session.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::core {

namespace {

std::string default_label(const PortBinding& binding) {
  std::string label = binding.target;
  if (!binding.connector.empty()) label += " via " + binding.connector;
  return label;
}

}  // namespace

std::vector<RankedAssembly> rank_assemblies(const Assembly& assembly,
                                            std::string_view service_name,
                                            const std::vector<double>& args,
                                            const std::vector<SelectionPoint>& points,
                                            const SelectionOptions& options) {
  const SelectionObjective& objective = options.objective;
  if (points.empty()) {
    throw InvalidArgument("rank_assemblies: no selection points given");
  }
  std::size_t combinations = 1;
  for (const SelectionPoint& point : points) {
    if (point.candidates.empty()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            " has no candidates");
    }
    if (!point.labels.empty() && point.labels.size() != point.candidates.size()) {
      throw InvalidArgument("selection point " + point.service + "." + point.port +
                            ": labels must parallel candidates");
    }
    if (combinations > options.max_combinations / point.candidates.size()) {
      throw InvalidArgument(
          "selection space exceeds " + std::to_string(options.max_combinations) +
          " combinations; prune candidate lists or raise the bound");
    }
    combinations *= point.candidates.size();
  }

  // Evaluate combinations on the runtime. Each worker slot lazily hoists
  // one mutable Assembly copy (bind() mutates, so the shared assembly
  // cannot back the sessions here) and one EvalSession — one validate()
  // per slot, not per combination. Rebinding a selection point drops only
  // the memoised results that consulted that binding, so results for
  // subtrees unaffected by the choice survive across combinations.
  //
  // Under work stealing a slot may receive non-contiguous blocks of
  // combinations; the mixed-radix diff below rewires from *whatever the
  // slot's assembly is currently bound to* straight to the block's first
  // combination, so results never depend on which blocks a slot saw (the
  // determinism grid in tests/sched pins this).
  //
  // The shared memo table is built over the *original* assembly: workers
  // start diverged at the selection points (their copies are re-wired), but
  // every subtree that never consults a selection point resolves to the
  // base state and is evaluated once per selection instead of once per
  // combination per worker. A selection point whose port is unbound in the
  // original assembly disables sharing on attach (universe mismatch) —
  // conservative and bit-identical either way.
  std::shared_ptr<memo::SharedMemo> shared_cache;
  if (options.shared_memo) {
    shared_cache = options.shared_cache ? options.shared_cache
                                        : make_shared_memo(assembly);
  }
  std::vector<RankedAssembly> entries(combinations);
  std::vector<char> kept(combinations, 0);

  struct Slot {
    explicit Slot(const Assembly& base) : wired(base) {}
    Assembly wired;
    std::optional<EvalSession> session;
    std::optional<PerformanceEngine> perf;
    std::vector<std::size_t> choice;
    std::vector<std::size_t> next;
  };
  const std::size_t slot_count = runtime::for_each_slots(combinations, options);
  std::vector<std::unique_ptr<Slot>> slots(slot_count);

  const auto decode = [&](std::size_t combo, std::vector<std::size_t>& out) {
    std::size_t rest = combo;  // mixed radix, least significant first
    for (std::size_t i = 0; i < points.size(); ++i) {
      out[i] = rest % points[i].candidates.size();
      rest /= points[i].candidates.size();
    }
  };
  const auto bind_point = [&](Slot& slot, std::size_t i) {
    slot.wired.bind(points[i].service, points[i].port,
                    points[i].candidates[slot.choice[i]]);
  };
  // Rewire an initialized slot from its current combination to `combo`:
  // rebind exactly the selection points whose digit changed.
  const auto rewire = [&](Slot& slot, std::size_t combo) {
    decode(combo, slot.next);
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (slot.next[i] != slot.choice[i]) {
        slot.choice[i] = slot.next[i];
        bind_point(slot, i);
        slot.session->invalidate_binding(points[i].service, points[i].port);
        changed = true;
      }
    }
    if (changed && slot.perf) slot.perf->clear_cache();
  };

  runtime::for_each(
      combinations, options, /*grain=*/1,
      [&](std::size_t begin, std::size_t end, std::size_t slot_id) {
        if (!slots[slot_id]) {
          auto fresh = std::make_unique<Slot>(assembly);
          fresh->choice.resize(points.size());
          fresh->next.resize(points.size());
          decode(begin, fresh->choice);
          for (std::size_t i = 0; i < points.size(); ++i) {
            bind_point(*fresh, i);
          }
          fresh->session.emplace(fresh->wired);
          if (shared_cache) fresh->session->attach_shared_memo(shared_cache);
          if (objective.time_weight != 0.0) fresh->perf.emplace(fresh->wired);
          slots[slot_id] = std::move(fresh);
        } else {
          rewire(*slots[slot_id], begin);
        }
        Slot& slot = *slots[slot_id];

        for (std::size_t combo = begin; combo < end; ++combo) {
          if (combo != begin) rewire(slot, combo);

          RankedAssembly entry;
          entry.choice = slot.choice;
          entry.labels.reserve(points.size());
          for (std::size_t i = 0; i < points.size(); ++i) {
            entry.labels.push_back(
                points[i].labels.empty()
                    ? default_label(points[i].candidates[slot.choice[i]])
                    : points[i].labels[slot.choice[i]]);
          }
          entry.reliability = slot.session->reliability(service_name, args);
          if (entry.reliability < objective.min_reliability) continue;
          if (slot.perf) {
            entry.expected_duration =
                slot.perf->expected_duration(service_name, args);
          }
          entry.score =
              entry.reliability - objective.time_weight * entry.expected_duration;
          entries[combo] = std::move(entry);
          kept[combo] = 1;
        }
      });

  // Ordered reduction: collect in combination order so the (unstable) sort
  // below sees the same input sequence for every thread count.
  std::vector<RankedAssembly> ranking;
  ranking.reserve(combinations);
  for (std::size_t combo = 0; combo < combinations; ++combo) {
    if (kept[combo]) ranking.push_back(std::move(entries[combo]));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const RankedAssembly& a, const RankedAssembly& b) {
              return a.score > b.score;
            });
  return ranking;
}

std::vector<RankedAssembly> rank_assemblies(const Assembly& assembly,
                                            std::string_view service_name,
                                            const std::vector<double>& args,
                                            const std::vector<SelectionPoint>& points,
                                            const SelectionObjective& objective,
                                            std::size_t max_combinations,
                                            std::size_t threads) {
  SelectionOptions options;
  options.objective = objective;
  options.max_combinations = max_combinations;
  options.threads = threads;
  return rank_assemblies(assembly, service_name, args, points, options);
}

RankedAssembly select_best(const Assembly& assembly, std::string_view service_name,
                           const std::vector<double>& args,
                           const std::vector<SelectionPoint>& points,
                           const SelectionObjective& objective) {
  auto ranking = rank_assemblies(assembly, service_name, args, points, objective);
  if (ranking.empty()) {
    throw InvalidArgument(
        "select_best: every candidate combination fell below the reliability "
        "floor");
  }
  return std::move(ranking.front());
}

}  // namespace sorel::core
