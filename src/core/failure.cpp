#include "sorel/core/failure.hpp"

#include <cmath>

#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

namespace {

double check_probability(double p, const char* what) {
  // Tolerate tiny round-off excursions, reject real violations.
  constexpr double kSlack = 1e-12;
  if (p < -kSlack || p > 1.0 + kSlack || std::isnan(p)) {
    throw NumericError(std::string(what) + " evaluated to " +
                       util::format_double(p) + ", outside [0, 1]");
  }
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace

InternalFailure InternalFailure::constant(expr::Expr p) {
  InternalFailure f;
  f.kind_ = Kind::kConstant;
  f.p_ = std::move(p);
  return f;
}

InternalFailure InternalFailure::constant(double p) {
  return constant(expr::Expr::constant(p));
}

InternalFailure InternalFailure::per_operation(expr::Expr phi, expr::Expr count) {
  InternalFailure f;
  f.kind_ = Kind::kPerOperation;
  f.phi_ = std::move(phi);
  f.count_ = std::move(count);
  return f;
}

InternalFailure InternalFailure::per_operation(double phi, expr::Expr count) {
  return per_operation(expr::Expr::constant(phi), std::move(count));
}

double InternalFailure::pfail(const expr::Env& env) const {
  switch (kind_) {
    case Kind::kNone:
      return 0.0;
    case Kind::kConstant:
      return check_probability(p_.eval(env), "internal failure probability");
    case Kind::kPerOperation: {
      // Eq. (14): 1 − (1 − φ)^N. Computed as -expm1(N log1p(-φ)) so that
      // per-operation rates of 1e-10 over millions of operations keep full
      // precision instead of cancelling.
      const double phi =
          check_probability(phi_.eval(env), "per-operation failure rate");
      const double count = count_.eval(env);
      if (count < 0.0) {
        throw NumericError("per-operation failure count evaluated to " +
                           util::format_double(count) + " < 0");
      }
      if (phi >= 1.0) return count > 0.0 ? 1.0 : 0.0;
      return -std::expm1(count * std::log1p(-phi));
    }
  }
  throw NumericError("corrupt internal-failure model");
}

}  // namespace sorel::core
