#include "sorel/core/session.hpp"

#include <utility>

#include "sorel/util/error.hpp"

namespace sorel::core {

EvalSession::EvalSession(const Assembly& assembly)
    : EvalSession(assembly, Options{}) {}

EvalSession::EvalSession(const Assembly& assembly, Options options)
    : assembly_(assembly),
      base_(assembly.attribute_env()),
      engine_(assembly, std::move(options.engine)) {}

std::size_t EvalSession::set_attributes(
    const std::map<std::string, double>& deltas) {
  // Validate before mutating anything so a LookupError leaves the session
  // state (overlay and engine snapshot) consistent.
  for (const auto& [name, value] : deltas) {
    (void)value;
    if (!base_.contains(name)) {
      throw LookupError("attribute '" + name +
                        "' is not defined in the assembly");
    }
  }
  const std::size_t invalidated = engine_.apply_attribute_deltas(deltas);
  for (const auto& [name, value] : deltas) {
    const auto base_value = base_.lookup(name);
    if (base_value && *base_value == value) {
      overlay_.erase(name);  // back to the assembly's own value
    } else {
      overlay_[name] = value;
    }
  }
  return invalidated;
}

std::size_t EvalSession::set_attribute(std::string_view name, double value) {
  return set_attributes({{std::string(name), value}});
}

std::size_t EvalSession::rebase_attributes(
    const std::map<std::string, double>& overrides) {
  std::map<std::string, double> deltas = overrides;
  for (const auto& [name, value] : overlay_) {
    (void)value;
    if (deltas.find(name) == deltas.end()) {
      deltas.emplace(name, *base_.lookup(name));  // revert to assembly value
    }
  }
  return set_attributes(deltas);
}

std::size_t EvalSession::reset_attributes() { return rebase_attributes({}); }

void EvalSession::set_pfail_overrides(std::map<std::string, double> overrides) {
  engine_.set_pfail_overrides(std::move(overrides));
}

std::size_t EvalSession::invalidate_binding(std::string_view service,
                                            std::string_view port) {
  return engine_.invalidate_binding(service, port);
}

double EvalSession::pfail(std::string_view service_name,
                          const std::vector<double>& args) {
  return engine_.pfail(service_name, args);
}

double EvalSession::reliability(std::string_view service_name,
                                const std::vector<double>& args) {
  return engine_.reliability(service_name, args);
}

ReliabilityEngine::FailureModes EvalSession::failure_modes(
    std::string_view service_name, const std::vector<double>& args) {
  return engine_.failure_modes(service_name, args);
}

std::optional<double> EvalSession::attribute(std::string_view name) const {
  return engine_.attribute(name);
}

}  // namespace sorel::core
