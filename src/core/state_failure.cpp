#include "sorel/core/state_failure.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::core {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument(std::string(what) + " = " + util::format_double(p) +
                          " outside [0, 1]");
  }
}

void check_requests(std::span<const RequestFailure> requests) {
  for (const RequestFailure& r : requests) {
    check_probability(r.internal, "internal failure probability");
    check_probability(r.external, "external failure probability");
  }
}

void check_k(std::span<const RequestFailure> requests, std::size_t k) {
  if (k < 1 || k > requests.size()) {
    throw InvalidArgument("k-of-n threshold k=" + std::to_string(k) +
                          " outside [1, " + std::to_string(requests.size()) + "]");
  }
}

/// P(#successes >= k) for independent Bernoulli successes with
/// probabilities `success[i]`, by the standard O(n·k) DP over "number of
/// successes so far", truncated at k (every count >= k is equivalent).
double prob_at_least_k(const std::vector<double>& success, std::size_t k) {
  // dp[c] = probability of exactly c successes among the processed prefix,
  // with dp[k] accumulating "k or more".
  std::vector<double> dp(k + 1, 0.0);
  dp[0] = 1.0;
  for (const double p : success) {
    for (std::size_t c = k; c-- > 0;) {
      const double move = dp[c] * p;
      dp[c] -= move;
      dp[std::min(c + 1, k)] += move;
    }
  }
  return dp[k];
}

}  // namespace

double external_failure_probability(double service_pfail, double connector_pfail) {
  check_probability(service_pfail, "service failure probability");
  check_probability(connector_pfail, "connector failure probability");
  // Eq. (13): Pfail_ext = 1 − (1 − Pfail(S))(1 − Pfail(C)).
  return 1.0 - (1.0 - service_pfail) * (1.0 - connector_pfail);
}

double request_failure_probability(const RequestFailure& r) {
  check_probability(r.internal, "internal failure probability");
  check_probability(r.external, "external failure probability");
  // Eq. (8): fail iff an internal or an external failure occurs.
  return 1.0 - (1.0 - r.internal) * (1.0 - r.external);
}

double and_no_sharing(std::span<const RequestFailure> requests) {
  check_requests(requests);
  // Eq. (6): 1 − Π (1 − Pr{fail(A_ij)}).
  double all_ok = 1.0;
  for (const RequestFailure& r : requests) {
    all_ok *= (1.0 - r.internal) * (1.0 - r.external);
  }
  return 1.0 - all_ok;
}

double or_no_sharing(std::span<const RequestFailure> requests) {
  check_requests(requests);
  if (requests.empty()) return 0.0;  // nothing required: the state cannot fail
  // Eq. (7): Π Pr{fail(A_ij)}.
  double all_fail = 1.0;
  for (const RequestFailure& r : requests) {
    all_fail *= 1.0 - (1.0 - r.internal) * (1.0 - r.external);
  }
  return all_fail;
}

double and_sharing(std::span<const RequestFailure> requests) {
  check_requests(requests);
  // Eq. (11): 1 − Π (1 − Pfail_int) · Π (1 − Pfail_ext).
  double int_ok = 1.0;
  double ext_ok = 1.0;
  for (const RequestFailure& r : requests) {
    int_ok *= 1.0 - r.internal;
    ext_ok *= 1.0 - r.external;
  }
  return 1.0 - int_ok * ext_ok;
}

double or_sharing(std::span<const RequestFailure> requests) {
  check_requests(requests);
  if (requests.empty()) return 0.0;
  // Eq. (12): 1 − Π (1 − Pfail_ext) · (1 − Π Pfail_int).
  double ext_ok = 1.0;
  double int_all_fail = 1.0;
  for (const RequestFailure& r : requests) {
    ext_ok *= 1.0 - r.external;
    int_all_fail *= r.internal;
  }
  return 1.0 - ext_ok * (1.0 - int_all_fail);
}

double k_of_n_no_sharing(std::span<const RequestFailure> requests, std::size_t k) {
  check_requests(requests);
  if (requests.empty()) return 0.0;
  check_k(requests, k);
  std::vector<double> success;
  success.reserve(requests.size());
  for (const RequestFailure& r : requests) {
    success.push_back((1.0 - r.internal) * (1.0 - r.external));
  }
  return 1.0 - prob_at_least_k(success, k);
}

double k_of_n_sharing(std::span<const RequestFailure> requests, std::size_t k) {
  check_requests(requests);
  if (requests.empty()) return 0.0;
  check_k(requests, k);
  // Any external failure of the shared service defeats every request
  // (fail-stop, no repair); conditioned on no external failure only the
  // independent internal failures decide the success count.
  double ext_ok = 1.0;
  std::vector<double> internal_success;
  internal_success.reserve(requests.size());
  for (const RequestFailure& r : requests) {
    ext_ok *= 1.0 - r.external;
    internal_success.push_back(1.0 - r.internal);
  }
  return 1.0 - ext_ok * prob_at_least_k(internal_success, k);
}

double state_failure_probability(std::span<const RequestFailure> requests,
                                 CompletionModel completion, std::size_t k,
                                 DependencyModel dependency) {
  if (requests.empty()) return 0.0;
  switch (completion) {
    case CompletionModel::kAnd:
      return dependency == DependencyModel::kSharing ? and_sharing(requests)
                                                     : and_no_sharing(requests);
    case CompletionModel::kOr:
      return dependency == DependencyModel::kSharing ? or_sharing(requests)
                                                     : or_no_sharing(requests);
    case CompletionModel::kKOfN:
      return dependency == DependencyModel::kSharing
                 ? k_of_n_sharing(requests, k)
                 : k_of_n_no_sharing(requests, k);
  }
  throw InvalidArgument("unknown completion model");
}

}  // namespace sorel::core
