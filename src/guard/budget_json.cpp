#include "sorel/guard/budget_json.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "sorel/util/error.hpp"

namespace sorel::guard {
namespace {

double positive_number(const json::Value& v, const std::string& context,
                       const std::string& key) {
  if (!v.is_number())
    throw InvalidArgument(context + ": budget field '" + key +
                          "' must be a number");
  const double n = v.as_number();
  if (!std::isfinite(n) || n < 0.0)
    throw InvalidArgument(context + ": budget field '" + key +
                          "' must be a finite non-negative number");
  return n;
}

std::uint64_t count_field(const json::Value& v, const std::string& context,
                          const std::string& key) {
  const double n = positive_number(v, context, key);
  if (n != std::floor(n) ||
      n > static_cast<double>(std::numeric_limits<std::uint64_t>::max()))
    throw InvalidArgument(context + ": budget field '" + key +
                          "' must be a non-negative integer");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

Budget budget_from_json(const json::Value& value, const std::string& context) {
  if (!value.is_object())
    throw InvalidArgument(context + ": budget must be a JSON object");
  Budget budget;
  for (const auto& [key, v] : value.as_object()) {
    if (key == "deadline_ms") {
      budget.deadline_ms = positive_number(v, context, key);
    } else if (key == "max_evals") {
      budget.max_evaluations = count_field(v, context, key);
    } else if (key == "max_states") {
      budget.max_states = count_field(v, context, key);
    } else if (key == "max_expr_evals") {
      budget.max_expr_evaluations = count_field(v, context, key);
    } else if (key == "max_fixpoint_iterations") {
      budget.max_fixpoint_iterations = count_field(v, context, key);
    } else {
      throw InvalidArgument(context + ": unknown budget field '" + key + "'");
    }
  }
  return budget;
}

json::Value budget_to_json(const Budget& budget) {
  json::Object out;
  if (budget.deadline_ms != 0.0) out["deadline_ms"] = budget.deadline_ms;
  if (budget.max_evaluations != 0)
    out["max_evals"] = static_cast<double>(budget.max_evaluations);
  if (budget.max_states != 0)
    out["max_states"] = static_cast<double>(budget.max_states);
  if (budget.max_expr_evaluations != 0)
    out["max_expr_evals"] = static_cast<double>(budget.max_expr_evaluations);
  if (budget.max_fixpoint_iterations != 0)
    out["max_fixpoint_iterations"] =
        static_cast<double>(budget.max_fixpoint_iterations);
  return json::Value(std::move(out));
}

}  // namespace sorel::guard
