#include "sorel/guard/meter.hpp"

#include <string>

#include "sorel/util/error.hpp"

namespace sorel::guard {

void Meter::arm() {
  armed_ = true;
  countdown_ = kStride;
  evaluations_ = 0;
  states_ = 0;
  expr_evaluations_ = 0;
  start_ = std::chrono::steady_clock::now();
  has_deadline_ = budget_.deadline_ms > 0.0;
  if (has_deadline_) {
    deadline_point_ =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(budget_.deadline_ms));
  }
}

double Meter::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void Meter::check_now() {
  countdown_ = kStride;
  if (cancel_ != nullptr && cancel_->cancelled()) throw_cancelled();
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_point_)
    throw_deadline();
}

void Meter::throw_count_limit(const char* limit, std::uint64_t cap) {
  // Clamp the exceeded counter to its cap: a warm memo hit charges a whole
  // subtree in one lump and can jump past the cap, but the clamped value is
  // identical however the work was chunked across threads.
  std::uint64_t evals = evaluations_;
  std::uint64_t states = states_;
  std::string name(limit);
  if (name == "max_evaluations") evals = cap;
  if (name == "max_states") states = cap;
  armed_ = false;
  throw BudgetExceeded("budget exceeded: " + name + " limit of " +
                           std::to_string(cap) + " reached",
                       name, evals, states, elapsed_ms());
}

void Meter::throw_fixpoint_limit(std::uint64_t limit) {
  armed_ = false;
  throw BudgetExceeded(
      "budget exceeded: max_fixpoint_iterations limit of " +
          std::to_string(limit) + " reached without convergence",
      "max_fixpoint_iterations", evaluations_, states_, elapsed_ms());
}

void Meter::throw_deadline() {
  armed_ = false;
  throw BudgetExceeded("budget exceeded: deadline of " +
                           std::to_string(budget_.deadline_ms) +
                           " ms elapsed",
                       "deadline_ms", evaluations_, states_, elapsed_ms());
}

void Meter::throw_cancelled() {
  armed_ = false;
  throw Cancelled("evaluation cancelled via CancelToken", evaluations_,
                  states_, elapsed_ms());
}

}  // namespace sorel::guard
