#include "sorel/runtime/thread_pool.hpp"

#include <cstdlib>
#include <string>

#include "sorel/sched/scheduler.hpp"

namespace sorel::runtime {

namespace {

// Set for the lifetime of every worker thread; parallel_for consults it to
// degrade nested loops to the calling thread.
thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  // Also register with sorel::sched so nested scheduler constructs
  // (for_each_dynamic, TaskGraph runs) degrade to inline on pool workers,
  // symmetric with parallel_for inlining on scheduler workers.
  sched::Scheduler::mark_task_worker();
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are the task's responsibility (parallel_for
             // captures them into exception_ptr slots)
  }
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("SOREL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

std::size_t resolve_threads(std::size_t requested) {
  return requested == 0 ? ThreadPool::default_threads() : requested;
}

}  // namespace sorel::runtime
