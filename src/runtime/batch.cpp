#include "sorel/runtime/batch.hpp"

#include <chrono>
#include <utility>

#include "sorel/runtime/parallel_for.hpp"
#include "sorel/util/error.hpp"

namespace sorel::runtime {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

BatchEvaluator::BatchEvaluator(const core::Assembly& assembly)
    : BatchEvaluator(assembly, Options{}) {}

BatchEvaluator::BatchEvaluator(const core::Assembly& assembly, Options options)
    : assembly_(assembly), options_(std::move(options)) {
  assembly_.validate();
}

std::vector<BatchItem> BatchEvaluator::evaluate(
    const std::vector<BatchJob>& jobs) {
  const expr::Env base_env = assembly_.attribute_env();
  for (const BatchJob& job : jobs) {
    for (const auto& [name, value] : job.attribute_overrides) {
      (void)value;
      if (!base_env.contains(name)) {
        throw LookupError("batch job overrides attribute '" + name +
                          "' which is not defined in the assembly");
      }
    }
  }

  const auto batch_start = std::chrono::steady_clock::now();
  const std::size_t chunks =
      jobs.empty() ? 0 : std::min(jobs.size(), resolve_threads(options_.threads));

  std::vector<BatchItem> results(jobs.size());
  std::vector<core::ReliabilityEngine::Stats> chunk_stats(
      chunks == 0 ? 1 : chunks);
  parallel_for(jobs.size(), options_.threads,
               [&](std::size_t begin, std::size_t end, std::size_t chunk) {
    core::Assembly local = assembly_;           // one copy per worker
    core::ReliabilityEngine engine(local, options_.engine);  // one validate
    bool attrs_dirty = false;
    bool pfail_dirty = false;
    for (std::size_t i = begin; i < end; ++i) {
      const BatchJob& job = jobs[i];
      if (!job.attribute_overrides.empty() || attrs_dirty) {
        if (attrs_dirty) {
          // Restore every attribute to the base value before layering this
          // job's overrides (jobs see the assembly's own values by default).
          for (const auto& [name, value] : base_env.bindings()) {
            local.set_attribute(name, value);
          }
        }
        for (const auto& [name, value] : job.attribute_overrides) {
          local.set_attribute(name, value);
        }
        engine.refresh_attributes();
        attrs_dirty = !job.attribute_overrides.empty();
      }
      if (!job.pfail_overrides.empty() || pfail_dirty) {
        auto merged = options_.engine.pfail_overrides;
        for (const auto& [name, value] : job.pfail_overrides) {
          merged[name] = value;
        }
        engine.set_pfail_overrides(std::move(merged));
        pfail_dirty = !job.pfail_overrides.empty();
      }

      const auto job_start = std::chrono::steady_clock::now();
      const double pfail = engine.pfail(job.service, job.args);
      results[i].pfail = pfail;
      results[i].reliability = 1.0 - pfail;
      results[i].wall_seconds = seconds_since(job_start);
    }
    chunk_stats[chunk] = engine.stats();
  });

  BatchStats stats;
  stats.jobs = jobs.size();
  stats.chunks = chunks;
  for (const core::ReliabilityEngine::Stats& s : chunk_stats) {
    stats.engine_evaluations += s.evaluations;
    stats.engine_memo_hits += s.memo_hits;
  }
  stats.wall_seconds = seconds_since(batch_start);
  stats_ = stats;
  return results;
}

}  // namespace sorel::runtime
