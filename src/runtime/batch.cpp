#include "sorel/runtime/batch.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "sorel/core/session.hpp"
#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::runtime {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

BatchEvaluator::BatchEvaluator(const core::Assembly& assembly)
    : BatchEvaluator(assembly, Options{}) {}

BatchEvaluator::BatchEvaluator(const core::Assembly& assembly, Options options)
    : assembly_(assembly), options_(std::move(options)) {
  assembly_.validate();
}

std::vector<BatchItem> BatchEvaluator::evaluate(
    const std::vector<BatchJob>& jobs) {
  const auto batch_start = std::chrono::steady_clock::now();

  // One shared memo table for the whole batch (unless the caller brought a
  // warm one): a (service, args) result over unchanged base state is then
  // evaluated by whichever worker gets there first and replayed everywhere
  // else. The engine itself gates sharing off when it would be unsound
  // (pfail overrides, dependency tracking disabled).
  std::shared_ptr<memo::SharedMemo> shared;
  if (options_.shared_memo && !jobs.empty()) {
    shared = options_.shared_cache ? options_.shared_cache
                                   : core::make_shared_memo(assembly_);
  }

  std::vector<BatchItem> results(jobs.size());
  // One lazily-created session per worker slot over the *shared* assembly —
  // one validate() per slot, no Assembly copy (job overrides live in the
  // session). Per-job re-basing below makes every job independent of the
  // slot's history, so it does not matter which (possibly non-contiguous)
  // blocks of jobs a slot receives under work stealing.
  struct Slot {
    std::optional<core::EvalSession> session;
    bool pfail_dirty = false;
    bool budget_dirty = false;
  };
  std::vector<Slot> slots(runtime::for_each_slots(jobs.size(), options_));
  for_each(jobs.size(), options_, /*grain=*/1,
           [&](std::size_t begin, std::size_t end, std::size_t slot_id) {
    Slot& slot = slots[slot_id];
    if (!slot.session) {
      core::EvalSession::Options session_options;
      session_options.engine = options_.engine;
      slot.session.emplace(assembly_, std::move(session_options));
      if (shared) slot.session->attach_shared_memo(shared);
      const bool global_guard =
          !options_.budget.unlimited() || options_.cancel != nullptr;
      if (global_guard) slot.session->set_budget(options_.budget, options_.cancel);
    }
    core::EvalSession& session = *slot.session;
    bool& pfail_dirty = slot.pfail_dirty;
    bool& budget_dirty = slot.budget_dirty;
    for (std::size_t i = begin; i < end; ++i) {
      const BatchJob& job = jobs[i];
      const auto job_start = std::chrono::steady_clock::now();
      try {
        // Per-job budget overlay (and restore after a job that set one).
        if (!job.budget.unlimited()) {
          session.set_budget(options_.budget.overlaid_with(job.budget),
                             options_.cancel);
          budget_dirty = true;
        } else if (budget_dirty) {
          session.set_budget(options_.budget, options_.cancel);
          budget_dirty = false;
        }
        // Sparse re-base: consecutive jobs usually override the same few
        // attributes, so this invalidates only what actually changed. It
        // also makes jobs independent of chunk history — a poisoned job
        // leaves no residue the next re-base wouldn't clear.
        session.rebase_attributes(job.attribute_overrides);
        if (!job.pfail_overrides.empty() || pfail_dirty) {
          auto merged = options_.engine.pfail_overrides;
          for (const auto& [name, value] : job.pfail_overrides) {
            merged[name] = value;
          }
          session.set_pfail_overrides(std::move(merged));
          pfail_dirty = !job.pfail_overrides.empty();
        }

        const double pfail = session.pfail(job.service, job.args);
        results[i].ok = true;
        results[i].pfail = pfail;
        results[i].reliability = 1.0 - pfail;
      } catch (const BudgetExceeded& e) {
        results[i].ok = false;
        results[i].error_category = error_category(e);
        results[i].error_message = e.what();
        results[i].budget_limit = e.limit();
        results[i].evaluations_done = e.evaluations();
        results[i].states_expanded = e.states();
        results[i].elapsed_ms = e.elapsed_ms();
      } catch (const Cancelled& e) {
        results[i].ok = false;
        results[i].error_category = error_category(e);
        results[i].error_message = e.what();
        results[i].evaluations_done = e.evaluations();
        results[i].states_expanded = e.states();
        results[i].elapsed_ms = e.elapsed_ms();
      } catch (const std::exception& e) {
        results[i].ok = false;
        results[i].error_category = error_category(e);
        results[i].error_message = e.what();
      }
      results[i].wall_seconds = seconds_since(job_start);
    }
  });

  BatchStats stats;
  stats.jobs = jobs.size();
  for (const Slot& slot : slots) {  // slot order: deterministic merge
    if (!slot.session) continue;
    ++stats.chunks;
    const core::ReliabilityEngine::Stats s = slot.session->stats();
    stats.engine_evaluations += s.evaluations;
    stats.engine_memo_hits += s.memo_hits;
    stats.engine_memo_invalidated += s.memo_invalidated;
    stats.shared_hits += s.shared_hits;
    stats.shared_misses += s.shared_misses;
  }
  if (shared) {
    stats.shared_memo = true;
    stats.shared_cache_stats = shared->stats();
  }
  for (const BatchItem& item : results) {
    if (!item.ok) ++stats.failed_jobs;
  }
  stats.wall_seconds = seconds_since(batch_start);
  stats_ = stats;
  return results;
}

}  // namespace sorel::runtime
