#include "sorel/resil/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "sorel/json/json.hpp"
#include "sorel/util/error.hpp"

namespace sorel::resil {

namespace {

/// Is this response line a structured overload shed (retryable)? Returns
/// the server's retry_after_ms hint (0 when absent). A response that does
/// not parse as JSON is treated as final — the server never emits garbage,
/// so garbage means the caller should see it.
bool is_overloaded(const std::string& line, double* retry_after_ms) {
  *retry_after_ms = 0.0;
  try {
    const json::Value response = json::parse(line);
    if (!response.is_object()) return false;
    if (!response.contains("ok") || response.at("ok").as_bool()) return false;
    if (!response.contains("error") ||
        response.at("error").as_string() != "overloaded") {
      return false;
    }
    if (response.contains("retry_after_ms")) {
      *retry_after_ms = response.at("retry_after_ms").as_number();
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool response_ok(const std::string& line) {
  try {
    const json::Value response = json::parse(line);
    return response.is_object() && response.contains("ok") &&
           response.at("ok").as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Client::Client(std::string host, std::uint16_t port, ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      rng_(options.seed) {
  sockaddr_in probe{};
  if (::inet_pton(AF_INET, host_.c_str(), &probe.sin_addr) != 1) {
    throw InvalidArgument("connect: not an IPv4 address: '" + host_ + "'");
  }
}

Client::Client(std::string unix_path, ClientOptions options)
    : options_(options), rng_(options.seed) {
  if (unix_path.rfind("unix:", 0) == 0) unix_path.erase(0, 5);
  sockaddr_un probe{};
  if (unix_path.empty() || unix_path.size() >= sizeof(probe.sun_path)) {
    throw InvalidArgument("connect: unix socket path must be 1.." +
                          std::to_string(sizeof(probe.sun_path) - 1) +
                          " bytes: '" + unix_path + "'");
  }
  unix_path_ = std::move(unix_path);
}

Client::~Client() { disconnect(); }

void Client::disconnect() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool Client::ensure_connected() {
  if (fd_ >= 0) return true;
  int fd = -1;
  if (!unix_path_.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd);
      return false;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port_);
    ::inet_pton(AF_INET, host_.c_str(), &address.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  stats_.reconnects += 1;
  return true;
}

bool Client::send_line(const std::string& line) {
  std::string wire = line;
  wire += '\n';
  const char* data = wire.data();
  std::size_t size = wire.size();
  while (size > 0) {
    const ssize_t sent = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(sent);
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool Client::read_line(std::string* out, double timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  for (;;) {
    const std::size_t newline = rx_.find('\n');
    if (newline != std::string::npos) {
      *out = rx_.substr(0, newline);
      rx_.erase(0, newline + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd waiter{};
    waiter.fd = fd_;
    waiter.events = POLLIN;
    const int ready =
        ::poll(&waiter, 1, static_cast<int>(std::max<long long>(
                               1, remaining.count())));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;  // timed out
    char chunk[4096];
    const ssize_t received = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received <= 0) return false;  // server closed the connection
    rx_.append(chunk, static_cast<std::size_t>(received));
  }
}

void Client::backoff(std::size_t retry_index, double floor_ms) {
  double delay = options_.backoff_base_ms *
                 std::pow(options_.backoff_factor,
                          static_cast<double>(retry_index));
  delay = std::min(delay, options_.backoff_max_ms);
  // Seeded jitter in [0.5, 1): spreads retry storms without losing
  // replayability (the rng advances once per backoff, same seed ⇒ same
  // delay sequence).
  delay *= 0.5 + 0.5 * rng_.uniform();
  delay = std::max(delay, floor_ms);
  if (delay > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay));
  }
}

RequestOutcome Client::call(const std::string& line) {
  stats_.requests += 1;
  RequestOutcome outcome;
  for (std::size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    outcome.attempts = attempt + 1;
    if (attempt > 0) stats_.retries += 1;
    double retry_floor_ms = 0.0;
    if (!ensure_connected()) {
      stats_.transport_errors += 1;
    } else if (!send_line(line)) {
      stats_.transport_errors += 1;
      disconnect();
    } else {
      std::string response;
      if (!read_line(&response, options_.timeout_ms)) {
        // Timeout or mid-response disconnect: the connection's pipeline
        // position is unknowable, so start clean.
        stats_.transport_errors += 1;
        disconnect();
      } else if (is_overloaded(response, &retry_floor_ms)) {
        stats_.overloaded += 1;
        if (attempt == options_.max_retries) {
          // Out of retries: the shed response itself is the final word.
          outcome.response = std::move(response);
          outcome.transport_ok = true;
          outcome.ok = false;
          return outcome;
        }
      } else {
        outcome.response = std::move(response);
        outcome.transport_ok = true;
        outcome.ok = response_ok(outcome.response);
        return outcome;
      }
    }
    if (attempt < options_.max_retries) backoff(attempt, retry_floor_ms);
  }
  outcome.transport_ok = false;
  outcome.ok = false;
  return outcome;
}

}  // namespace sorel::resil
