#include "sorel/resil/token_bucket.hpp"

#include <algorithm>

namespace sorel::resil {

TokenBucket::TokenBucket(double capacity, double refill_per_sec)
    : capacity_(capacity > 0.0 ? capacity : 0.0),
      refill_per_sec_(refill_per_sec > 0.0 ? refill_per_sec : 0.0),
      tokens_(capacity_),
      last_refill_(std::chrono::steady_clock::now()) {}

void TokenBucket::refill_locked(
    std::chrono::steady_clock::time_point now) const {
  if (refill_per_sec_ <= 0.0) return;
  const std::chrono::duration<double> elapsed = now - last_refill_;
  last_refill_ = now;
  tokens_ = std::min(capacity_, tokens_ + elapsed.count() * refill_per_sec_);
}

bool TokenBucket::try_acquire() {
  if (!limited()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(std::chrono::steady_clock::now());
  return tokens_ > 0.0;
}

void TokenBucket::charge(double cost) {
  if (!limited() || cost <= 0.0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(std::chrono::steady_clock::now());
  tokens_ = std::clamp(tokens_ - cost, -capacity_, capacity_);
}

double TokenBucket::tokens() const {
  if (!limited()) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  refill_locked(std::chrono::steady_clock::now());
  return tokens_;
}

}  // namespace sorel::resil
