#include "sorel/resil/chaos.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "sorel/util/error.hpp"
#include "sorel/util/rng.hpp"

namespace sorel::resil {

namespace {

constexpr const char* kSiteNames[kSiteCount] = {
    "tcp.accept",      "tcp.recv",    "tcp.send",
    "sched.task_start", "memo.insert", "spec.load",
    "fs.write",        "fs.fsync",    "fs.rename",
    "fs.read",         "dist.report_write", "dist.report_read",
};

constexpr const char* kSiteDescriptions[kSiteCount] = {
    "synthesize a transient accept() failure in the TCP front end",
    "simulate a connection reset while reading a client's request stream",
    "drop a response write (the client observes a half-dead connection)",
    "perturb scheduling by yielding before a task body runs",
    "drop a shared-memo publication (the entry is re-evaluated later)",
    "fail spec loading with an allocation failure before any mutation",
    "tear a snapshot write: half the bytes reach the temp file, then fail",
    "fail the fsync before a snapshot's atomic rename (temp file left)",
    "crash between a snapshot's temp write and its rename into place",
    "short-read a snapshot while loading (the image arrives truncated)",
    "tear a shard-report write: half the bytes reach the temp file, then fail",
    "short-read a shard report (the merger must reject the truncation)",
};

/// The process-wide chaos state: the immutable-while-active plan plus the
/// per-site visit counters. One static instance; `active` gates reads so
/// the disabled fast path is a single relaxed load.
struct ChaosState {
  std::atomic<bool> active{false};
  std::mutex install_mutex;
  FaultPlan plan;
  std::array<std::atomic<std::uint64_t>, kSiteCount> visits{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> injected{};
};

ChaosState& state() {
  static ChaosState instance;
  return instance;
}

/// The install body shared by programmatic installs and the one-shot
/// ambient consult below (which must not re-enter the public install_chaos
/// — that would deadlock on the once_flag).
void install_plan(const FaultPlan& plan) {
  ChaosState& chaos = state();
  std::lock_guard<std::mutex> lock(chaos.install_mutex);
  chaos.active.store(false, std::memory_order_release);
  chaos.plan = plan;
  for (auto& counter : chaos.visits) counter.store(0, std::memory_order_relaxed);
  for (auto& counter : chaos.injected) {
    counter.store(0, std::memory_order_relaxed);
  }
  chaos.active.store(true, std::memory_order_release);
}

/// Consult SOREL_CHAOS exactly once per process, before the first verdict.
/// A malformed value is reported and ignored (the process runs chaos-free)
/// rather than aborting a library client. install_chaos and
/// uninstall_chaos burn the flag too: an explicit plan (or an explicit
/// "no chaos") must win over the ambient one no matter whether any verdict
/// was asked for before it — otherwise the first chaos_fire after an early
/// install would silently replace the installed plan with the env's.
void ensure_env_consulted() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("SOREL_CHAOS");
    if (spec == nullptr || *spec == '\0') return;
    try {
      install_plan(FaultPlan::parse(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sorel: ignoring malformed SOREL_CHAOS: %s\n",
                   e.what());
    }
  });
}

}  // namespace

const char* site_name(Site site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

const char* site_description(Site site) noexcept {
  return kSiteDescriptions[static_cast<std::size_t>(site)];
}

Site site_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  throw InvalidArgument("chaos: unknown site '" + name + "'");
}

bool FaultPlan::any() const noexcept {
  for (const double rate : rates) {
    if (rate > 0.0) return true;
  }
  return false;
}

bool FaultPlan::fires(Site site, std::uint64_t visit) const noexcept {
  const double rate = this->rate(site);
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // The verdict is a pure hash of (seed, site, visit): substream_seed
  // decorrelates the sites, one more SplitMix64 step decorrelates the
  // visits, and the top 53 bits become a uniform double in [0, 1).
  const std::uint64_t stream =
      util::substream_seed(seed, static_cast<std::uint64_t>(site) + 1);
  util::SplitMix64 mix(stream ^
                       (visit * 0xD2B74407B1CE6E93ULL + 0x9E3779B97F4A7C15ULL));
  const double draw = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  return draw < rate;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  double default_rate = 0.0;
  std::vector<Site> default_sites;
  std::istringstream stream(spec);
  std::string field;
  const auto parse_rate = [](const std::string& key, const std::string& text) {
    std::size_t used = 0;
    double rate = 0.0;
    try {
      rate = std::stod(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != text.size() || !(rate >= 0.0) || !(rate <= 1.0)) {
      throw InvalidArgument("chaos: " + key + " needs a probability in [0,1], got '" +
                            text + "'");
    }
    return rate;
  };
  while (std::getline(stream, field, ',')) {
    if (field.empty()) continue;
    const std::size_t equals = field.find('=');
    if (equals == std::string::npos) {
      throw InvalidArgument("chaos: expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, equals);
    const std::string value = field.substr(equals + 1);
    if (key == "seed") {
      try {
        std::size_t used = 0;
        plan.seed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        throw InvalidArgument("chaos: seed needs an unsigned integer, got '" +
                              value + "'");
      }
    } else if (key == "rate") {
      default_rate = parse_rate(key, value);
    } else if (key == "sites") {
      std::istringstream names(value);
      std::string name;
      while (std::getline(names, name, '|')) {
        if (!name.empty()) default_sites.push_back(site_from_name(name));
      }
      if (default_sites.empty()) {
        throw InvalidArgument("chaos: sites needs a |-separated site list");
      }
    } else {
      plan.rate(site_from_name(key)) = parse_rate(key, value);
    }
  }
  for (const Site site : default_sites) plan.rate(site) = default_rate;
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (rates[i] > 0.0) {
      out << ',' << kSiteNames[i] << '=' << rates[i];
    }
  }
  return out.str();
}

std::uint64_t ChaosStats::total_visits() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : visits) total += count;
  return total;
}

std::uint64_t ChaosStats::total_injected() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected) total += count;
  return total;
}

void install_chaos(const FaultPlan& plan) {
  ensure_env_consulted();
  install_plan(plan);
}

void uninstall_chaos() noexcept {
  ensure_env_consulted();
  state().active.store(false, std::memory_order_release);
}

bool chaos_active() noexcept {
  ensure_env_consulted();
  return state().active.load(std::memory_order_acquire);
}

FaultPlan chaos_plan() {
  ChaosState& chaos = state();
  std::lock_guard<std::mutex> lock(chaos.install_mutex);
  return chaos.active.load(std::memory_order_acquire) ? chaos.plan
                                                      : FaultPlan{};
}

ChaosStats chaos_stats() {
  ChaosState& chaos = state();
  ChaosStats out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    out.visits[i] = chaos.visits[i].load(std::memory_order_relaxed);
    out.injected[i] = chaos.injected[i].load(std::memory_order_relaxed);
  }
  return out;
}

bool chaos_fire(Site site) noexcept {
  ensure_env_consulted();
  ChaosState& chaos = state();
  if (!chaos.active.load(std::memory_order_relaxed)) return false;
  const std::size_t index = static_cast<std::size_t>(site);
  // fetch_add hands every visit a unique, gap-free index; the verdict is a
  // pure function of that index, so concurrent visitors can race for the
  // counter and still reproduce the exact injection sequence of any other
  // interleaving.
  const std::uint64_t visit =
      chaos.visits[index].fetch_add(1, std::memory_order_relaxed);
  if (!chaos.plan.fires(site, visit)) return false;
  chaos.injected[index].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace sorel::resil
