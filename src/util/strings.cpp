#include "sorel/util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sorel::util {

std::string format_double(double value, int precision) {
  if (value == 0.0) return "0";
  if (value == 1.0) return "1";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  const auto head = static_cast<unsigned char>(text.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (std::size_t i = 1; i < text.size(); ++i) {
    const auto c = static_cast<unsigned char>(text[i]);
    if (!std::isalnum(c) && c != '_' && c != '.') return false;
  }
  return true;
}

}  // namespace sorel::util
