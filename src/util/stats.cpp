#include "sorel/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sorel::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double proportion_ci_halfwidth(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  return z * std::sqrt(p * (1.0 - p) / n);
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

}  // namespace sorel::util
