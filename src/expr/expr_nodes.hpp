// Internal: the expression AST node layout, shared by the evaluator
// (expr.cpp) and the program compiler (compiled.cpp). Not installed; the
// public API never exposes nodes.
#pragma once

#include <memory>
#include <string>

namespace sorel::expr::detail {

enum class Kind {
  kConstant,
  kVariable,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kPow,
  kExp,
  kLog,
  kLog2,
  kSqrt,
  kMin,
  kMax,
};

struct Node {
  Kind kind;
  double value = 0.0;               // kConstant
  std::string name;                 // kVariable
  std::shared_ptr<const Node> lhs;  // unary operand or left child
  std::shared_ptr<const Node> rhs;  // right child (binary only)
};

using NodePtr = std::shared_ptr<const Node>;

}  // namespace sorel::expr::detail
