#include "sorel/expr/parser.hpp"

#include <cctype>
#include <charconv>
#include <string>

#include "sorel/util/error.hpp"

namespace sorel::expr {

namespace {

/// Hand-written recursive-descent parser. Tracks line/column so ParseError
/// messages point at the offending character in multi-line DSL files.
class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  Expr parse() {
    skip_ws();
    if (at_end()) fail("empty expression");
    Expr e = parse_expr();
    skip_ws();
    if (!at_end()) fail(std::string("unexpected character '") + peek() + "'");
    return e;
  }

 private:
  // Parenthesised sub-expressions, function calls, and unary/power chains
  // recurse; bound the depth so pathological input reports an error instead
  // of exhausting the call stack.
  static constexpr std::size_t kMaxDepth = 400;

  // A flat giant expression (`1+1+1+...`) parses iteratively but builds a
  // left-deep Expr whose teardown recurses once per node; cap the size so
  // adversarial input cannot blow the stack on destruction either. Expr
  // teardown is a tail-light recursion, so the cap can sit well above the
  // nesting cap without risking the stack.
  static constexpr std::size_t kMaxNodes = 100000;

  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("expression nesting deeper than 400 levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  // expr := term (('+' | '-') term)*
  Expr parse_expr() {
    const DepthGuard guard(*this);
    Expr lhs = parse_term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        lhs = lhs + parse_term();
      } else if (consume('-')) {
        lhs = lhs - parse_term();
      } else {
        return lhs;
      }
    }
  }

  // term := unary (('*' | '/') unary)*
  Expr parse_term() {
    Expr lhs = parse_unary();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        lhs = lhs * parse_unary();
      } else if (consume('/')) {
        lhs = lhs / parse_unary();
      } else {
        return lhs;
      }
    }
  }

  // unary := '-' unary | power
  // Guard only the branch that actually recurses; the pass-through to
  // parse_power must not charge depth, or every paren level (which routes
  // expr -> term -> unary -> primary) would count twice against the cap.
  Expr parse_unary() {
    skip_ws();
    if (consume('-')) {
      const DepthGuard guard(*this);
      return -parse_unary();
    }
    return parse_power();
  }

  // power := primary ('^' unary)?   (right-associative)
  Expr parse_power() {
    Expr base = parse_primary();
    skip_ws();
    if (consume('^')) {
      const DepthGuard guard(*this);
      return pow(base, parse_unary());
    }
    return base;
  }

  Expr parse_primary() {
    if (++nodes_ > kMaxNodes) {
      fail("expression larger than 100000 terms");
    }
    skip_ws();
    if (at_end()) fail("unexpected end of expression");
    const char c = peek();
    if (consume('(')) {
      Expr e = parse_expr();
      expect(')');
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return parse_number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return parse_identifier();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  Expr parse_number() {
    const std::size_t begin = pos_;
    double value = 0.0;
    const char* first = src_.data() + pos_;
    const char* last = src_.data() + src_.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) {
      fail("number literal is outside the range of a finite double");
    }
    if (ec != std::errc{} || ptr == first) fail("malformed number literal");
    advance_to(begin + static_cast<std::size_t>(ptr - first));
    return Expr::constant(value);
  }

  Expr parse_identifier() {
    const std::size_t begin = pos_;
    while (!at_end()) {
      const auto c = static_cast<unsigned char>(peek());
      if (std::isalnum(c) || c == '_' || c == '.') {
        advance();
      } else {
        break;
      }
    }
    const std::string name(src_.substr(begin, pos_ - begin));
    skip_ws();
    if (!at_end() && peek() == '(') return parse_call(name);
    return Expr::var(name);
  }

  Expr parse_call(const std::string& name) {
    expect('(');
    Expr arg0 = parse_expr();
    if (name == "exp" || name == "log" || name == "log2" || name == "sqrt") {
      expect(')');
      if (name == "exp") return exp(arg0);
      if (name == "log") return log(arg0);
      if (name == "log2") return log2(arg0);
      return sqrt(arg0);
    }
    if (name == "pow" || name == "min" || name == "max") {
      expect(',');
      Expr arg1 = parse_expr();
      expect(')');
      if (name == "pow") return pow(arg0, arg1);
      if (name == "min") return min(arg0, arg1);
      return max(arg0, arg1);
    }
    fail("unknown function '" + name + "'");
  }

  // -- lexing helpers ----------------------------------------------------
  bool at_end() const noexcept { return pos_ >= src_.size(); }
  char peek() const noexcept { return src_[pos_]; }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void advance_to(std::size_t new_pos) {
    while (pos_ < new_pos) advance();
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    advance();
    return true;
  }

  void expect(char c) {
    skip_ws();
    if (!consume(c)) {
      fail(at_end() ? std::string("expected '") + c + "' before end of input"
                    : std::string("expected '") + c + "', found '" + peek() + "'");
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("expression parse error: " + message, line_, column_);
  }

  std::string_view src_;
  std::size_t depth_ = 0;
  std::size_t nodes_ = 0;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

}  // namespace

Expr parse(std::string_view source) { return Parser(source).parse(); }

}  // namespace sorel::expr
