// CompiledExpr lives in its own translation unit but needs the Node layout,
// which is private to the expr implementation; the shared definition is
// pulled in through the implementation header below.
#include "sorel/expr/compiled.hpp"

#include <cmath>
#include <map>

#include "expr_nodes.hpp"
#include "sorel/util/error.hpp"

namespace sorel::expr {

namespace {

using detail::Kind;
using detail::Node;

void emit(const Node& node, const std::map<std::string, std::uint32_t>& slots,
          std::vector<CompiledExpr::Instruction>& program);

}  // namespace

double CompiledExpr::eval(std::span<const double> values) const {
  if (values.size() != variable_count_) {
    throw InvalidArgument("compiled expression expects " +
                          std::to_string(variable_count_) + " values, got " +
                          std::to_string(values.size()));
  }
  // The stack depth is bounded at compile time; a small inline buffer covers
  // realistic programs. (Zero-initialised only to satisfy conservative
  // -Wmaybe-uninitialized analysis; every slot is written before it is read.)
  double stack_storage[64] = {};
  std::vector<double> heap_storage;
  double* stack = stack_storage;
  if (max_stack_ > 64) {
    heap_storage.resize(max_stack_);
    stack = heap_storage.data();
  }
  std::size_t top = 0;

  const auto check_finite = [](double v) {
    if (!std::isfinite(v)) {
      throw NumericError("compiled expression produced a non-finite value");
    }
    return v;
  };

  for (const Instruction& instr : program_) {
    switch (instr.op) {
      case Op::kConst:
        stack[top++] = instr.value;
        break;
      case Op::kLoad:
        stack[top++] = values[instr.slot];
        break;
      case Op::kNeg:
        stack[top - 1] = -stack[top - 1];
        break;
      case Op::kExp:
        stack[top - 1] = check_finite(std::exp(stack[top - 1]));
        break;
      case Op::kLog:
        if (stack[top - 1] <= 0.0) throw NumericError("log of non-positive value");
        stack[top - 1] = std::log(stack[top - 1]);
        break;
      case Op::kLog2:
        if (stack[top - 1] <= 0.0) throw NumericError("log2 of non-positive value");
        stack[top - 1] = std::log2(stack[top - 1]);
        break;
      case Op::kSqrt:
        if (stack[top - 1] < 0.0) throw NumericError("sqrt of negative value");
        stack[top - 1] = std::sqrt(stack[top - 1]);
        break;
      default: {
        const double rhs = stack[--top];
        double& lhs = stack[top - 1];
        switch (instr.op) {
          case Op::kAdd:
            lhs = check_finite(lhs + rhs);
            break;
          case Op::kSub:
            lhs = check_finite(lhs - rhs);
            break;
          case Op::kMul:
            lhs = check_finite(lhs * rhs);
            break;
          case Op::kDiv:
            if (rhs == 0.0) throw NumericError("division by zero in expression");
            lhs = check_finite(lhs / rhs);
            break;
          case Op::kPow:
            if (lhs < 0.0 && rhs != std::floor(rhs)) {
              throw NumericError("pow with negative base and non-integer exponent");
            }
            lhs = check_finite(std::pow(lhs, rhs));
            break;
          case Op::kMin:
            lhs = std::min(lhs, rhs);
            break;
          case Op::kMax:
            lhs = std::max(lhs, rhs);
            break;
          default:
            throw NumericError("corrupt compiled expression");
        }
      }
    }
  }
  return stack[0];
}

namespace {

void emit(const Node& node, const std::map<std::string, std::uint32_t>& slots,
          std::vector<CompiledExpr::Instruction>& program) {
  using Instruction = CompiledExpr::Instruction;
  using Op = CompiledExpr::Op;
  switch (node.kind) {
    case Kind::kConstant:
      program.push_back(Instruction{Op::kConst, 0, node.value});
      return;
    case Kind::kVariable: {
      const auto it = slots.find(node.name);
      if (it == slots.end()) {
        throw LookupError("compiled expression: variable '" + node.name +
                          "' is not in the layout");
      }
      program.push_back(Instruction{Op::kLoad, it->second, 0.0});
      return;
    }
    default:
      break;
  }
  emit(*node.lhs, slots, program);
  if (node.rhs) emit(*node.rhs, slots, program);
  Op op;
  switch (node.kind) {
    case Kind::kAdd: op = Op::kAdd; break;
    case Kind::kSub: op = Op::kSub; break;
    case Kind::kMul: op = Op::kMul; break;
    case Kind::kDiv: op = Op::kDiv; break;
    case Kind::kNeg: op = Op::kNeg; break;
    case Kind::kPow: op = Op::kPow; break;
    case Kind::kExp: op = Op::kExp; break;
    case Kind::kLog: op = Op::kLog; break;
    case Kind::kLog2: op = Op::kLog2; break;
    case Kind::kSqrt: op = Op::kSqrt; break;
    case Kind::kMin: op = Op::kMin; break;
    case Kind::kMax: op = Op::kMax; break;
    default:
      throw NumericError("corrupt expression node");
  }
  program.push_back(CompiledExpr::Instruction{op, 0, 0.0});
}

std::size_t stack_need(const Node& node) {
  switch (node.kind) {
    case Kind::kConstant:
    case Kind::kVariable:
      return 1;
    default: {
      const std::size_t left = stack_need(*node.lhs);
      if (!node.rhs) return left;
      // Right operand is evaluated while the left result occupies one slot.
      return std::max(left, 1 + stack_need(*node.rhs));
    }
  }
}

}  // namespace

CompiledExpr compile(const Expr& expression, const std::vector<std::string>& layout) {
  std::map<std::string, std::uint32_t> slots;
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    if (!slots.emplace(layout[i], i).second) {
      throw InvalidArgument("compiled expression layout repeats variable '" +
                            layout[i] + "'");
    }
  }
  CompiledExpr compiled;
  compiled.variable_count_ = layout.size();
  compiled.layout_ = layout;
  emit(expression.node(), slots, compiled.program_);
  compiled.max_stack_ = stack_need(expression.node());
  return compiled;
}

std::vector<std::string> CompiledExpr::referenced_variables() const {
  std::vector<bool> loaded(layout_.size(), false);
  for (const Instruction& instr : program_) {
    if (instr.op == Op::kLoad) loaded[instr.slot] = true;
  }
  std::vector<std::string> out;
  for (std::size_t slot = 0; slot < layout_.size(); ++slot) {
    if (loaded[slot]) out.push_back(layout_[slot]);
  }
  return out;
}

bool CompiledExpr::references(std::string_view name) const {
  for (const Instruction& instr : program_) {
    if (instr.op == Op::kLoad && layout_[instr.slot] == name) return true;
  }
  return false;
}

}  // namespace sorel::expr
