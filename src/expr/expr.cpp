#include "sorel/expr/expr.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "expr_nodes.hpp"
#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::expr {

namespace detail {

namespace {

NodePtr make_constant(double v) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kConstant;
  n->value = v;
  return n;
}

NodePtr make_unary(Kind kind, NodePtr operand) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = std::move(operand);
  return n;
}

NodePtr make_binary(Kind kind, NodePtr lhs, NodePtr rhs) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

bool is_const(const NodePtr& n, double v) {
  return n->kind == Kind::kConstant && n->value == v;
}

double check_finite(double v, const char* context) {
  if (!std::isfinite(v)) {
    throw NumericError(
        std::string("expression evaluation produced a non-finite value in ") +
        context);
  }
  return v;
}

double eval_node(const Node& n, const Env& env) {
  switch (n.kind) {
    case Kind::kConstant:
      return n.value;
    case Kind::kVariable: {
      const auto v = env.lookup(n.name);
      if (!v) throw LookupError("unbound variable '" + n.name + "' in expression");
      return *v;
    }
    case Kind::kAdd:
      return check_finite(eval_node(*n.lhs, env) + eval_node(*n.rhs, env), "+");
    case Kind::kSub:
      return check_finite(eval_node(*n.lhs, env) - eval_node(*n.rhs, env), "-");
    case Kind::kMul:
      return check_finite(eval_node(*n.lhs, env) * eval_node(*n.rhs, env), "*");
    case Kind::kDiv: {
      const double denom = eval_node(*n.rhs, env);
      if (denom == 0.0) throw NumericError("division by zero in expression");
      return check_finite(eval_node(*n.lhs, env) / denom, "/");
    }
    case Kind::kNeg:
      return -eval_node(*n.lhs, env);
    case Kind::kPow: {
      const double b = eval_node(*n.lhs, env);
      const double e = eval_node(*n.rhs, env);
      if (b < 0.0 && e != std::floor(e)) {
        throw NumericError("pow with negative base and non-integer exponent");
      }
      return check_finite(std::pow(b, e), "pow");
    }
    case Kind::kExp:
      return check_finite(std::exp(eval_node(*n.lhs, env)), "exp");
    case Kind::kLog: {
      const double x = eval_node(*n.lhs, env);
      if (x <= 0.0) throw NumericError("log of non-positive value");
      return std::log(x);
    }
    case Kind::kLog2: {
      const double x = eval_node(*n.lhs, env);
      if (x <= 0.0) throw NumericError("log2 of non-positive value");
      return std::log2(x);
    }
    case Kind::kSqrt: {
      const double x = eval_node(*n.lhs, env);
      if (x < 0.0) throw NumericError("sqrt of negative value");
      return std::sqrt(x);
    }
    case Kind::kMin:
      return std::min(eval_node(*n.lhs, env), eval_node(*n.rhs, env));
    case Kind::kMax:
      return std::max(eval_node(*n.lhs, env), eval_node(*n.rhs, env));
  }
  throw NumericError("corrupt expression node");
}

void collect_variables(const Node& n, std::set<std::string>& out) {
  switch (n.kind) {
    case Kind::kConstant:
      return;
    case Kind::kVariable:
      out.insert(n.name);
      return;
    default:
      if (n.lhs) collect_variables(*n.lhs, out);
      if (n.rhs) collect_variables(*n.rhs, out);
  }
}

NodePtr substitute_node(const NodePtr& n, const std::map<std::string, NodePtr>& repl) {
  switch (n->kind) {
    case Kind::kConstant:
      return n;
    case Kind::kVariable: {
      const auto it = repl.find(n->name);
      return it == repl.end() ? n : it->second;
    }
    default: {
      const NodePtr lhs = n->lhs ? substitute_node(n->lhs, repl) : nullptr;
      const NodePtr rhs = n->rhs ? substitute_node(n->rhs, repl) : nullptr;
      if (lhs == n->lhs && rhs == n->rhs) return n;  // untouched subtree: share
      auto out = std::make_shared<Node>(*n);
      out->lhs = lhs;
      out->rhs = rhs;
      return out;
    }
  }
}

/// Fold when all children are constants and the operation is defined there.
NodePtr try_fold(const NodePtr& n) {
  const bool lhs_const = !n->lhs || n->lhs->kind == Kind::kConstant;
  const bool rhs_const = !n->rhs || n->rhs->kind == Kind::kConstant;
  if (!lhs_const || !rhs_const) return nullptr;
  try {
    return make_constant(eval_node(*n, Env{}));
  } catch (const Error&) {
    return nullptr;  // domain error: keep symbolic, fail at eval time
  }
}

NodePtr simplify_node(const NodePtr& n) {
  switch (n->kind) {
    case Kind::kConstant:
    case Kind::kVariable:
      return n;
    default:
      break;
  }
  const NodePtr lhs = n->lhs ? simplify_node(n->lhs) : nullptr;
  const NodePtr rhs = n->rhs ? simplify_node(n->rhs) : nullptr;
  auto rebuilt = std::make_shared<Node>(*n);
  rebuilt->lhs = lhs;
  rebuilt->rhs = rhs;
  const NodePtr node = rebuilt;

  if (NodePtr folded = try_fold(node)) return folded;

  switch (node->kind) {
    case Kind::kAdd:
      if (is_const(lhs, 0.0)) return rhs;
      if (is_const(rhs, 0.0)) return lhs;
      break;
    case Kind::kSub:
      if (is_const(rhs, 0.0)) return lhs;
      if (is_const(lhs, 0.0)) return make_unary(Kind::kNeg, rhs);
      break;
    case Kind::kMul:
      if (is_const(lhs, 0.0) || is_const(rhs, 0.0)) return make_constant(0.0);
      if (is_const(lhs, 1.0)) return rhs;
      if (is_const(rhs, 1.0)) return lhs;
      break;
    case Kind::kDiv:
      if (is_const(lhs, 0.0) && !is_const(rhs, 0.0)) return make_constant(0.0);
      if (is_const(rhs, 1.0)) return lhs;
      break;
    case Kind::kNeg:
      if (lhs->kind == Kind::kNeg) return lhs->lhs;  // --x -> x
      break;
    case Kind::kPow:
      if (is_const(rhs, 1.0)) return lhs;
      if (is_const(rhs, 0.0)) return make_constant(1.0);  // x^0 == 1 (incl. 0^0)
      if (is_const(lhs, 1.0)) return make_constant(1.0);
      break;
    case Kind::kExp:
      if (is_const(lhs, 0.0)) return make_constant(1.0);
      break;
    default:
      break;
  }
  return node;
}

NodePtr derive_node(const NodePtr& n, std::string_view var) {
  switch (n->kind) {
    case Kind::kConstant:
      return make_constant(0.0);
    case Kind::kVariable:
      return make_constant(n->name == var ? 1.0 : 0.0);
    case Kind::kAdd:
      return make_binary(Kind::kAdd, derive_node(n->lhs, var), derive_node(n->rhs, var));
    case Kind::kSub:
      return make_binary(Kind::kSub, derive_node(n->lhs, var), derive_node(n->rhs, var));
    case Kind::kMul:
      // (ab)' = a'b + ab'
      return make_binary(
          Kind::kAdd, make_binary(Kind::kMul, derive_node(n->lhs, var), n->rhs),
          make_binary(Kind::kMul, n->lhs, derive_node(n->rhs, var)));
    case Kind::kDiv: {
      // (a/b)' = (a'b - ab') / b^2
      const NodePtr num = make_binary(
          Kind::kSub, make_binary(Kind::kMul, derive_node(n->lhs, var), n->rhs),
          make_binary(Kind::kMul, n->lhs, derive_node(n->rhs, var)));
      return make_binary(Kind::kDiv, num, make_binary(Kind::kMul, n->rhs, n->rhs));
    }
    case Kind::kNeg:
      return make_unary(Kind::kNeg, derive_node(n->lhs, var));
    case Kind::kPow: {
      // Constant exponent shortcut: d(a^c) = c a^(c-1) a'.
      if (n->rhs->kind == Kind::kConstant) {
        const double c = n->rhs->value;
        return make_binary(
            Kind::kMul, make_constant(c),
            make_binary(Kind::kMul,
                        make_binary(Kind::kPow, n->lhs, make_constant(c - 1.0)),
                        derive_node(n->lhs, var)));
      }
      // General case: d(a^b) = a^b (b' ln a + b a' / a).
      const NodePtr term1 = make_binary(Kind::kMul, derive_node(n->rhs, var),
                                        make_unary(Kind::kLog, n->lhs));
      const NodePtr term2 = make_binary(
          Kind::kDiv, make_binary(Kind::kMul, n->rhs, derive_node(n->lhs, var)),
          n->lhs);
      return make_binary(Kind::kMul, make_binary(Kind::kPow, n->lhs, n->rhs),
                         make_binary(Kind::kAdd, term1, term2));
    }
    case Kind::kExp:
      return make_binary(Kind::kMul, make_unary(Kind::kExp, n->lhs),
                         derive_node(n->lhs, var));
    case Kind::kLog:
      return make_binary(Kind::kDiv, derive_node(n->lhs, var), n->lhs);
    case Kind::kLog2:
      return make_binary(Kind::kDiv, derive_node(n->lhs, var),
                         make_binary(Kind::kMul, n->lhs, make_constant(std::log(2.0))));
    case Kind::kSqrt:
      return make_binary(Kind::kDiv, derive_node(n->lhs, var),
                         make_binary(Kind::kMul, make_constant(2.0),
                                     make_unary(Kind::kSqrt, n->lhs)));
    case Kind::kMin:
    case Kind::kMax:
      throw InvalidArgument(
          "derivative of min/max is not supported; rewrite the model without "
          "piecewise expressions or use finite differences");
  }
  throw NumericError("corrupt expression node");
}

/// Precedence levels for printing: higher binds tighter.
int precedence(Kind k) {
  switch (k) {
    case Kind::kAdd:
    case Kind::kSub:
      return 1;
    case Kind::kMul:
    case Kind::kDiv:
      return 2;
    case Kind::kNeg:
      return 3;
    case Kind::kPow:
      return 4;
    default:
      return 5;  // atoms and function calls never need parens
  }
}

void print_node(const Node& n, std::string& out);

void print_child(const Node& parent, const Node& child, bool needs_parens,
                 std::string& out) {
  const bool parens = needs_parens || precedence(child.kind) < precedence(parent.kind);
  if (parens) out += '(';
  print_node(child, out);
  if (parens) out += ')';
}

void print_binary(const Node& n, const char* op, std::string& out) {
  print_child(n, *n.lhs, false, out);
  out += op;
  // Right child needs parens at equal precedence when the operator is not
  // right-associative: a - (b - c), a / (b / c). '^' is right-associative.
  const bool right_needs = precedence(n.rhs->kind) == precedence(n.kind) &&
                           (n.kind == Kind::kSub || n.kind == Kind::kDiv);
  print_child(n, *n.rhs, right_needs, out);
}

void print_call(const char* name, const Node& n, std::string& out) {
  out += name;
  out += '(';
  print_node(*n.lhs, out);
  if (n.rhs) {
    out += ", ";
    print_node(*n.rhs, out);
  }
  out += ')';
}

void print_node(const Node& n, std::string& out) {
  switch (n.kind) {
    case Kind::kConstant:
      if (n.value < 0) {
        out += '(' + util::format_double(n.value, 17) + ')';
      } else {
        out += util::format_double(n.value, 17);
      }
      return;
    case Kind::kVariable:
      out += n.name;
      return;
    case Kind::kAdd:
      print_binary(n, " + ", out);
      return;
    case Kind::kSub:
      print_binary(n, " - ", out);
      return;
    case Kind::kMul:
      print_binary(n, "*", out);
      return;
    case Kind::kDiv:
      print_binary(n, "/", out);
      return;
    case Kind::kNeg:
      out += '-';
      print_child(n, *n.lhs, false, out);
      return;
    case Kind::kPow:
      print_binary(n, "^", out);
      return;
    case Kind::kExp:
      print_call("exp", n, out);
      return;
    case Kind::kLog:
      print_call("log", n, out);
      return;
    case Kind::kLog2:
      print_call("log2", n, out);
      return;
    case Kind::kSqrt:
      print_call("sqrt", n, out);
      return;
    case Kind::kMin:
      print_call("min", n, out);
      return;
    case Kind::kMax:
      print_call("max", n, out);
      return;
  }
}

bool equal_nodes(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kConstant:
      return a.value == b.value;
    case Kind::kVariable:
      return a.name == b.name;
    default: {
      const bool lhs_eq =
          (a.lhs == b.lhs) || (a.lhs && b.lhs && equal_nodes(*a.lhs, *b.lhs));
      if (!lhs_eq) return false;
      if (!a.rhs && !b.rhs) return true;
      return a.rhs && b.rhs && equal_nodes(*a.rhs, *b.rhs);
    }
  }
}

/// Recover the owning pointer from a public Expr (node is immutable).
NodePtr ptr_of(const Expr& e) {
  // Expr exposes node() by const reference; copying the node would lose
  // structural sharing, so Expr grants the implementation access through
  // this friend-equivalent: the Expr(NodePtr) constructor plus a shared
  // clone. A shallow copy of Node shares its children, so this is cheap.
  return std::make_shared<Node>(e.node());
}

}  // namespace
}  // namespace detail

using detail::Kind;
using detail::Node;

Expr::Expr() : node_(std::make_shared<Node>(Node{Kind::kConstant, 0.0, {}, nullptr, nullptr})) {}
Expr::Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Expr Expr::constant(double value) {
  return Expr(std::make_shared<Node>(Node{Kind::kConstant, value, {}, nullptr, nullptr}));
}

Expr Expr::var(std::string name) {
  if (!util::is_identifier(name)) {
    throw InvalidArgument("'" + name + "' is not a valid variable name");
  }
  auto n = std::make_shared<Node>();
  n->kind = Kind::kVariable;
  n->name = std::move(name);
  return Expr(n);
}

namespace {

Expr make_binary_expr(Kind kind, const Expr& a, const Expr& b) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = detail::ptr_of(a);
  n->rhs = detail::ptr_of(b);
  if (n->lhs->kind == Kind::kConstant && n->rhs->kind == Kind::kConstant) {
    if (auto folded = detail::try_fold(n)) return Expr(folded);
  }
  return Expr(n);
}

Expr make_unary_expr(Kind kind, const Expr& x) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->lhs = detail::ptr_of(x);
  if (n->lhs->kind == Kind::kConstant) {
    if (auto folded = detail::try_fold(n)) return Expr(folded);
  }
  return Expr(n);
}

}  // namespace

Expr operator+(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kAdd, a, b); }
Expr operator-(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kSub, a, b); }
Expr operator*(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kMul, a, b); }
Expr operator/(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kDiv, a, b); }
Expr operator-(const Expr& a) { return make_unary_expr(Kind::kNeg, a); }

Expr pow(const Expr& base, const Expr& exponent) {
  return make_binary_expr(Kind::kPow, base, exponent);
}
Expr min(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kMin, a, b); }
Expr max(const Expr& a, const Expr& b) { return make_binary_expr(Kind::kMax, a, b); }
Expr exp(const Expr& x) { return make_unary_expr(Kind::kExp, x); }
Expr log(const Expr& x) { return make_unary_expr(Kind::kLog, x); }
Expr log2(const Expr& x) { return make_unary_expr(Kind::kLog2, x); }
Expr sqrt(const Expr& x) { return make_unary_expr(Kind::kSqrt, x); }

double Expr::eval(const Env& env) const { return detail::eval_node(*node_, env); }

std::set<std::string> Expr::variables() const {
  std::set<std::string> out;
  detail::collect_variables(*node_, out);
  return out;
}

namespace {

bool node_references(const detail::Node& n, std::string_view name) {
  switch (n.kind) {
    case detail::Kind::kConstant:
      return false;
    case detail::Kind::kVariable:
      return n.name == name;
    default:
      return (n.lhs && node_references(*n.lhs, name)) ||
             (n.rhs && node_references(*n.rhs, name));
  }
}

}  // namespace

bool Expr::references(std::string_view name) const {
  return node_references(*node_, name);
}

bool Expr::is_constant() const { return variables().empty(); }

double Expr::constant_value() const {
  if (!is_constant()) {
    throw InvalidArgument("constant_value() called on non-constant expression '" +
                          to_string() + "'");
  }
  return eval(Env{});
}

Expr Expr::substitute(const std::map<std::string, Expr>& replacements) const {
  std::map<std::string, detail::NodePtr> repl;
  for (const auto& [name, e] : replacements) {
    repl.emplace(name, detail::ptr_of(e));
  }
  return Expr(detail::substitute_node(node_, repl));
}

Expr Expr::simplify() const { return Expr(detail::simplify_node(node_)); }

Expr Expr::derivative(std::string_view variable) const {
  return Expr(detail::derive_node(node_, variable)).simplify();
}

std::string Expr::to_string() const {
  std::string out;
  detail::print_node(*node_, out);
  return out;
}

bool Expr::equals(const Expr& other) const {
  return node_ == other.node_ || detail::equal_nodes(*node_, *other.node_);
}

}  // namespace sorel::expr
