#include "sorel/markov/absorbing.hpp"

#include <string>

#include "sorel/linalg/iterative.hpp"
#include "sorel/linalg/lu.hpp"
#include "sorel/linalg/sparse.hpp"
#include "sorel/linalg/vector.hpp"
#include "sorel/util/error.hpp"

namespace sorel::markov {

using linalg::Matrix;
using linalg::Vector;

AbsorptionAnalysis AbsorptionAnalysis::compute(const Dtmc& chain, Method method,
                                               guard::Meter* meter) {
  chain.validate();

  AbsorptionAnalysis a;
  a.transient_index_.assign(chain.state_count(), -1);
  a.absorbing_index_.assign(chain.state_count(), -1);
  for (StateId s = 0; s < chain.state_count(); ++s) {
    if (chain.is_absorbing(s)) {
      a.absorbing_index_[s] = static_cast<std::ptrdiff_t>(a.absorbing_.size());
      a.absorbing_.push_back(s);
    } else {
      a.transient_index_[s] = static_cast<std::ptrdiff_t>(a.transient_.size());
      a.transient_.push_back(s);
    }
  }
  if (a.absorbing_.empty()) {
    throw ModelError("absorption analysis: chain has no absorbing state");
  }

  const std::size_t nt = a.transient_.size();
  const std::size_t na = a.absorbing_.size();

  // Every transient state must reach some absorbing state, otherwise the
  // chain has a closed recurrent class among "transient" states and
  // (I - Q) is singular.
  for (StateId s : a.transient_) {
    const auto reach = chain.reachable_from(s);
    bool ok = false;
    for (StateId t : a.absorbing_) ok = ok || reach[t];
    if (!ok) {
      throw NumericError("absorption analysis: state '" + chain.state_name(s) +
                         "' cannot reach any absorbing state");
    }
  }

  if (nt == 0) {
    a.absorption_ = Matrix(0, na);
    a.steps_ = Vector(0);
    return a;
  }

  if (method == Method::kDense) {
    // Assemble I - Q and R.
    Matrix i_minus_q = Matrix::identity(nt);
    Matrix r(nt, na);
    for (std::size_t row = 0; row < nt; ++row) {
      for (const Transition& t : chain.transitions_from(a.transient_[row])) {
        if (const auto ti = a.transient_index_[t.to]; ti >= 0) {
          i_minus_q(row, static_cast<std::size_t>(ti)) -= t.probability;
        } else {
          r(row, static_cast<std::size_t>(a.absorbing_index_[t.to])) += t.probability;
        }
      }
    }
    const auto lu = linalg::LuDecomposition::compute(i_minus_q);
    a.absorption_ = lu.solve(r);
    a.fundamental_ = lu.solve(Matrix::identity(nt));
    a.have_fundamental_ = true;
    a.steps_ = lu.solve(Vector(nt, 1.0));
  } else {
    // Sparse path: one Gauss–Seidel solve per absorbing column plus one for
    // the expected steps. No fundamental matrix (it is dense in general).
    linalg::SparseMatrix::Builder builder(nt, nt);
    Matrix r(nt, na);
    for (std::size_t row = 0; row < nt; ++row) {
      builder.add(row, row, 1.0);
      for (const Transition& t : chain.transitions_from(a.transient_[row])) {
        if (const auto ti = a.transient_index_[t.to]; ti >= 0) {
          builder.add(row, static_cast<std::size_t>(ti), -t.probability);
        } else {
          r(row, static_cast<std::size_t>(a.absorbing_index_[t.to])) += t.probability;
        }
      }
    }
    const linalg::SparseMatrix i_minus_q = std::move(builder).build();
    linalg::IterativeOptions options;
    options.tolerance = 1e-14;
    options.max_iterations = 100'000;
    options.meter = meter;

    a.absorption_ = Matrix(nt, na);
    for (std::size_t c = 0; c < na; ++c) {
      const auto res = linalg::gauss_seidel(i_minus_q, r.col(c), options);
      if (!res.converged) {
        throw NumericError("absorption analysis: Gauss-Seidel failed to converge");
      }
      for (std::size_t row = 0; row < nt; ++row) a.absorption_(row, c) = res.x[row];
    }
    const auto res = linalg::gauss_seidel(i_minus_q, Vector(nt, 1.0), options);
    if (!res.converged) {
      throw NumericError("absorption analysis: Gauss-Seidel failed to converge");
    }
    a.steps_ = res.x;
  }
  return a;
}

double AbsorptionAnalysis::absorption_probability(StateId from, StateId target) const {
  if (target >= absorbing_index_.size() || absorbing_index_[target] < 0) {
    throw InvalidArgument("absorption_probability: target state is not absorbing");
  }
  if (from >= transient_index_.size()) {
    throw InvalidArgument("absorption_probability: unknown source state");
  }
  if (transient_index_[from] < 0) return from == target ? 1.0 : 0.0;
  return absorption_(static_cast<std::size_t>(transient_index_[from]),
                     static_cast<std::size_t>(absorbing_index_[target]));
}

double AbsorptionAnalysis::expected_visits(StateId from, StateId to) const {
  if (!have_fundamental_) {
    throw InvalidArgument(
        "expected_visits requires the dense analysis method (fundamental matrix)");
  }
  if (from >= transient_index_.size() || transient_index_[from] < 0 ||
      to >= transient_index_.size() || transient_index_[to] < 0) {
    throw InvalidArgument("expected_visits: both states must be transient");
  }
  return fundamental_(static_cast<std::size_t>(transient_index_[from]),
                      static_cast<std::size_t>(transient_index_[to]));
}

double AbsorptionAnalysis::expected_steps(StateId from) const {
  if (from >= transient_index_.size()) {
    throw InvalidArgument("expected_steps: unknown state");
  }
  if (transient_index_[from] < 0) return 0.0;
  return steps_[static_cast<std::size_t>(transient_index_[from])];
}

}  // namespace sorel::markov
