#include "sorel/markov/dtmc.hpp"

#include <cmath>
#include <deque>
#include <string>

#include "sorel/util/error.hpp"
#include "sorel/util/strings.hpp"

namespace sorel::markov {

StateId Dtmc::add_state(std::string name) {
  if (name.empty()) throw InvalidArgument("DTMC state name must be non-empty");
  if (find_state(name)) {
    throw InvalidArgument("duplicate DTMC state name '" + name + "'");
  }
  names_.push_back(std::move(name));
  rows_.emplace_back();
  return names_.size() - 1;
}

void Dtmc::add_transition(StateId from, StateId to, double probability) {
  check_state(from, "transition source");
  check_state(to, "transition target");
  if (!(probability >= 0.0 && probability <= 1.0)) {
    throw InvalidArgument("transition probability " +
                          util::format_double(probability) +
                          " outside [0, 1] (from '" + names_[from] + "' to '" +
                          names_[to] + "')");
  }
  if (probability == 0.0) return;
  for (Transition& t : rows_[from]) {
    if (t.to == to) {
      t.probability += probability;
      return;
    }
  }
  rows_[from].push_back({to, probability});
}

const std::string& Dtmc::state_name(StateId s) const {
  check_state(s, "state");
  return names_[s];
}

std::optional<StateId> Dtmc::find_state(std::string_view name) const {
  for (StateId s = 0; s < names_.size(); ++s) {
    if (names_[s] == name) return s;
  }
  return std::nullopt;
}

const std::vector<Transition>& Dtmc::transitions_from(StateId s) const {
  check_state(s, "state");
  return rows_[s];
}

double Dtmc::row_sum(StateId s) const {
  check_state(s, "state");
  double sum = 0.0;
  for (const Transition& t : rows_[s]) sum += t.probability;
  return sum;
}

bool Dtmc::is_absorbing(StateId s) const {
  check_state(s, "state");
  for (const Transition& t : rows_[s]) {
    if (t.to != s && t.probability > 0.0) return false;
  }
  return true;
}

void Dtmc::validate(double tolerance) const {
  for (StateId s = 0; s < state_count(); ++s) {
    if (rows_[s].empty()) continue;  // absorbing by omission: fine
    double sum = 0.0;
    for (const Transition& t : rows_[s]) {
      if (!(t.probability >= 0.0 && t.probability <= 1.0 + tolerance)) {
        throw ModelError("transition probability out of range from state '" +
                         names_[s] + "'");
      }
      sum += t.probability;
    }
    if (std::fabs(sum - 1.0) > tolerance) {
      throw ModelError("outgoing probabilities of state '" + names_[s] +
                       "' sum to " + util::format_double(sum) + ", expected 1");
    }
  }
}

std::vector<bool> Dtmc::reachable_from(StateId from) const {
  check_state(from, "state");
  std::vector<bool> seen(state_count(), false);
  std::deque<StateId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    for (const Transition& t : rows_[s]) {
      if (t.probability > 0.0 && !seen[t.to]) {
        seen[t.to] = true;
        frontier.push_back(t.to);
      }
    }
  }
  return seen;
}

std::optional<StateId> Dtmc::sample_step(StateId s, util::Rng& rng) const {
  check_state(s, "state");
  if (rows_[s].empty() || is_absorbing(s)) return std::nullopt;
  const double u = rng.uniform();
  double acc = 0.0;
  for (const Transition& t : rows_[s]) {
    acc += t.probability;
    if (u < acc) return t.to;
  }
  return rows_[s].back().to;  // round-off residual goes to the last branch
}

std::string Dtmc::to_dot(std::string_view graph_name) const {
  std::string out = "digraph \"";
  out += graph_name;
  out += "\" {\n  rankdir=LR;\n  node [shape=circle, fontsize=11];\n";
  for (StateId s = 0; s < state_count(); ++s) {
    out += "  s" + std::to_string(s) + " [label=\"" + names_[s] + "\"";
    if (is_absorbing(s)) out += ", shape=doublecircle";
    out += "];\n";
  }
  for (StateId s = 0; s < state_count(); ++s) {
    for (const Transition& t : rows_[s]) {
      out += "  s" + std::to_string(s) + " -> s" + std::to_string(t.to) +
             " [label=\"" + util::format_double(t.probability, 6) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

void Dtmc::check_state(StateId s, const char* what) const {
  if (s >= state_count()) {
    throw InvalidArgument(std::string(what) + " id " + std::to_string(s) +
                          " out of range (chain has " +
                          std::to_string(state_count()) + " states)");
  }
}

}  // namespace sorel::markov
