#include "sorel/sim/simulator.hpp"

#include <atomic>
#include <string>

#include "sorel/runtime/for_each.hpp"
#include "sorel/util/error.hpp"

namespace sorel::sim {

using core::CompletionModel;
using core::CompositeService;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::Service;
using core::ServiceRequest;
using core::SimpleService;

Simulator::Simulator(const core::Assembly& assembly)
    : assembly_(assembly), base_env_(assembly.attribute_env()) {
  assembly_.validate();
}

SimulationResult Simulator::estimate(std::string_view service_name,
                                     const std::vector<double>& args,
                                     const SimulationOptions& options) const {
  const core::ServicePtr& svc = assembly_.service(service_name);
  // Replication i draws from the substream (seed, i): counts are identical
  // for every thread count — and for any work-stealing block layout —
  // because each replication's draws are independent of how the index range
  // is chunked. The reduction is a plain sum of per-block counters, which
  // is order-insensitive for integers. Replications are cheap, so the
  // dynamic grain is coarse: fine blocks would be all scheduling overhead.
  std::atomic<std::size_t> successes{0};
  runtime::for_each(
      options.replications, options, /*grain=*/1024,
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        std::size_t local = 0;
        for (std::size_t i = begin; i < end; ++i) {
          util::Rng rng(util::substream_seed(options.seed, i));
          if (sample_invocation(*svc, args, rng, 0, options.max_depth)) ++local;
        }
        successes.fetch_add(local, std::memory_order_relaxed);
      });
  SimulationResult result;
  result.replications = options.replications;
  result.successes = successes.load(std::memory_order_relaxed);
  return result;
}

Simulator::ModeCounts Simulator::estimate_failure_modes(
    std::string_view service_name, const std::vector<double>& args,
    const SimulationOptions& options) const {
  const core::ServicePtr& svc = assembly_.service(service_name);
  const auto* composite = dynamic_cast<const CompositeService*>(svc.get());
  if (composite == nullptr) {
    throw InvalidArgument("estimate_failure_modes: service '" +
                          std::string(service_name) + "' is simple (no flow)");
  }
  if (args.size() != composite->arity()) {
    throw InvalidArgument("simulator: service '" + composite->name() +
                          "' expects " + std::to_string(composite->arity()) +
                          " arguments, got " + std::to_string(args.size()));
  }
  const FlowGraph& flow = *composite->flow();
  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(composite->formals()[i].name, args[i]);
  }

  // Per-replication substreams, as in estimate(): identical counts for
  // every thread count.
  std::atomic<std::size_t> successes{0};
  std::atomic<std::size_t> detected_total{0};
  std::atomic<std::size_t> silent{0};
  runtime::for_each(
      options.replications, options, /*grain=*/1024,
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        std::size_t local_success = 0;
        std::size_t local_detected = 0;
        std::size_t local_silent = 0;
        for (std::size_t rep = begin; rep < end; ++rep) {
          util::Rng rng(util::substream_seed(options.seed, rep));
          core::FlowStateId current = FlowGraph::kStart;
          bool contaminated = false;
          bool detected = false;
          for (std::size_t step = 0; step <= options.max_depth; ++step) {
            if (current == FlowGraph::kEnd) break;
            if (current != FlowGraph::kStart) {
              const FlowState& state = flow.state(current);
              if (!sample_state(*composite, state, env, rng, 0,
                                options.max_depth)) {
                if (rng.bernoulli(state.undetected_failure_fraction)) {
                  contaminated = true;  // silent: keep walking
                } else {
                  detected = true;  // fail-stop
                  break;
                }
              }
            }
            const auto& transitions = flow.transitions_from(current);
            const double u = rng.uniform();
            double acc = 0.0;
            core::FlowStateId next = transitions.back().to;
            for (const auto& t : transitions) {
              acc += t.probability.eval(env);
              if (u < acc) {
                next = t.to;
                break;
              }
            }
            current = next;
          }
          if (detected || current != FlowGraph::kEnd) {
            ++local_detected;  // fail-stop (or walk bound exhausted)
          } else if (contaminated) {
            ++local_silent;  // completed, but an undetected failure slipped
          } else {
            ++local_success;
          }
        }
        successes.fetch_add(local_success, std::memory_order_relaxed);
        detected_total.fetch_add(local_detected, std::memory_order_relaxed);
        silent.fetch_add(local_silent, std::memory_order_relaxed);
      });
  ModeCounts counts;
  counts.replications = options.replications;
  counts.successes = successes.load(std::memory_order_relaxed);
  counts.detected = detected_total.load(std::memory_order_relaxed);
  counts.silent = silent.load(std::memory_order_relaxed);
  return counts;
}

bool Simulator::sample_invocation(const Service& service,
                                  const std::vector<double>& args, util::Rng& rng,
                                  std::size_t depth, std::size_t max_depth) const {
  if (args.size() != service.arity()) {
    throw InvalidArgument("simulator: service '" + service.name() + "' expects " +
                          std::to_string(service.arity()) + " arguments, got " +
                          std::to_string(args.size()));
  }
  if (depth > max_depth) return false;  // conservative: count as failure

  if (const auto* simple = dynamic_cast<const SimpleService*>(&service)) {
    expr::Env env = base_env_;
    for (std::size_t i = 0; i < args.size(); ++i) {
      env.set(simple->formals()[i].name, args[i]);
    }
    return !rng.bernoulli(simple->pfail_expr().eval(env));
  }
  return sample_composite(dynamic_cast<const CompositeService&>(service), args, rng,
                          depth, max_depth);
}

bool Simulator::sample_composite(const CompositeService& service,
                                 const std::vector<double>& args, util::Rng& rng,
                                 std::size_t depth, std::size_t max_depth) const {
  const FlowGraph& flow = *service.flow();
  expr::Env env = base_env_;
  for (std::size_t i = 0; i < args.size(); ++i) {
    env.set(service.formals()[i].name, args[i]);
  }

  core::FlowStateId current = FlowGraph::kStart;
  // Walk the flow. Start incurs no failures (paper: no real behaviour there).
  for (std::size_t step = 0; step <= max_depth; ++step) {
    if (current == FlowGraph::kEnd) return true;
    if (current != FlowGraph::kStart) {
      if (!sample_state(service, flow.state(current), env, rng, depth, max_depth)) {
        return false;
      }
    }
    // Sample the next state from the (parametric) transition row.
    const auto& transitions = flow.transitions_from(current);
    const double u = rng.uniform();
    double acc = 0.0;
    core::FlowStateId next = transitions.empty() ? current : transitions.back().to;
    for (const auto& t : transitions) {
      acc += t.probability.eval(env);
      if (u < acc) {
        next = t.to;
        break;
      }
    }
    if (transitions.empty()) {
      throw ModelError("simulator: state '" + flow.state_name(current) +
                       "' of service '" + service.name() + "' has no successor");
    }
    current = next;
  }
  return false;  // walk did not terminate within the step bound
}

bool Simulator::sample_state(const CompositeService& service, const FlowState& state,
                             const expr::Env& env, util::Rng& rng, std::size_t depth,
                             std::size_t max_depth) const {
  const std::size_t n = state.requests.size();
  if (n == 0) return true;

  // Sample outcomes request by request.
  std::size_t successes = 0;
  bool any_external_failure = false;
  std::vector<bool> internal_ok(n, true);
  for (std::size_t j = 0; j < n; ++j) {
    const ServiceRequest& request = state.requests[j];
    internal_ok[j] = !rng.bernoulli(request.internal.pfail(env));
    const bool ext_ok =
        sample_request_external(service, request, env, rng, depth, max_depth);
    any_external_failure = any_external_failure || !ext_ok;
    if (internal_ok[j] && ext_ok) ++successes;
  }

  if (state.dependency == DependencyModel::kSharing && any_external_failure) {
    // Fail-stop, no repair: one external failure of the shared service
    // defeats every request in the state.
    successes = 0;
  } else if (state.dependency == DependencyModel::kSharing) {
    // No external failure occurred: only internal failures filter successes.
    successes = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (internal_ok[j]) ++successes;
    }
  }

  switch (state.completion) {
    case CompletionModel::kAnd:
      return successes == n;
    case CompletionModel::kOr:
      return successes >= 1;
    case CompletionModel::kKOfN:
      return successes >= state.k;
  }
  throw ModelError("simulator: unknown completion model");
}

bool Simulator::sample_request_external(const CompositeService& service,
                                        const ServiceRequest& request,
                                        const expr::Env& env, util::Rng& rng,
                                        std::size_t depth,
                                        std::size_t max_depth) const {
  const core::PortBinding& bind = assembly_.binding(service.name(), request.port);
  const core::ServicePtr& target = assembly_.service(bind.target);

  std::vector<double> child_args;
  child_args.reserve(request.actuals.size());
  for (const expr::Expr& actual : request.actuals) {
    child_args.push_back(actual.eval(env));
  }
  if (!sample_invocation(*target, child_args, rng, depth + 1, max_depth)) {
    return false;
  }
  if (bind.connector.empty()) return true;

  const core::ServicePtr& connector = assembly_.service(bind.connector);
  expr::Env conn_env = env;
  for (std::size_t i = 0; i < child_args.size(); ++i) {
    conn_env.set("arg" + std::to_string(i), child_args[i]);
  }
  const auto& actual_exprs = request.connector_actuals.empty()
                                 ? bind.connector_actuals
                                 : request.connector_actuals;
  std::vector<double> conn_args;
  conn_args.reserve(actual_exprs.size());
  for (const expr::Expr& actual : actual_exprs) {
    conn_args.push_back(actual.eval(conn_env));
  }
  return sample_invocation(*connector, conn_args, rng, depth + 1, max_depth);
}

}  // namespace sorel::sim
