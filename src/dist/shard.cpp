// The worker half of sharded selection: evaluate one mixed-radix sub-range
// and stamp the report header that lets the merger trust it.

#include "sorel/dist/dist.hpp"
#include "sorel/snap/snapshot.hpp"

#ifndef SOREL_VERSION_STRING
#define SOREL_VERSION_STRING "0.0.0-unversioned"
#endif

namespace sorel::dist {

ShardReport run_shard(const core::Assembly& assembly,
                      std::string_view service_name,
                      const std::vector<double>& args,
                      const std::vector<core::SelectionPoint>& points,
                      const ShardSpec& spec,
                      const core::SelectionOptions& options) {
  const std::size_t total = core::selection_space_size(points);
  const auto range = shard_range(spec, total);

  ShardReport report;
  report.library_version = SOREL_VERSION_STRING;
  report.spec_key = snap::spec_key(assembly);
  report.service = std::string(service_name);
  report.args = args;
  report.objective = options.objective;
  report.point_names.reserve(points.size());
  report.radices.reserve(points.size());
  for (const core::SelectionPoint& point : points) {
    report.point_names.push_back(point.service + "." + point.port);
    report.radices.push_back(point.candidates.size());
  }
  report.total_combinations = total;
  report.shard = spec;
  report.begin = range.first;
  report.end = range.second;

  core::RangeEvaluation evaluation = core::evaluate_combination_range(
      assembly, service_name, args, points, options, range.first, range.second);
  report.rows = std::move(evaluation.outcomes);
  report.stats.physical_evaluations = evaluation.physical_evaluations;
  report.stats.shared_hits = evaluation.shared_hits;
  report.stats.shared_misses = evaluation.shared_misses;
  return report;
}

}  // namespace sorel::dist
