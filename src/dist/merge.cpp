// The coordinator half: validate that a set of shard reports is one
// complete, mutually consistent cover of a single selection job, then fold
// it into the merged ranking. Order-invariant over input order — the
// reports are re-sorted by shard index before any order-sensitive step, and
// every aggregate is either position-independent or computed in index
// order.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "sorel/dist/dist.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/util/error.hpp"

namespace sorel::dist {

namespace {

DistError fail(DistStatus status, std::string detail) {
  return DistError{status, std::move(detail)};
}

// Per-report internal consistency: merge() accepts hand-built reports, not
// just loader output, so the coverage argument must not assume the loader
// already ran. Returns a Malformed/Ok error.
DistError validate_report(const ShardReport& report) {
  if (report.shard.count == 0 || report.shard.index == 0 ||
      report.shard.index > report.shard.count) {
    return fail(DistStatus::Malformed,
                "shard " + std::to_string(report.shard.index) + "/" +
                    std::to_string(report.shard.count) + " is invalid");
  }
  std::size_t product = 1;
  for (std::size_t radix : report.radices) {
    if (radix == 0) return fail(DistStatus::Malformed, "zero radix");
    product *= radix;
  }
  if (report.radices.empty() ||
      report.radices.size() != report.point_names.size() ||
      product != report.total_combinations) {
    return fail(DistStatus::Malformed,
                "radices/points disagree with total_combinations");
  }
  const auto range = shard_range(report.shard, report.total_combinations);
  if (report.begin != range.first || report.end != range.second) {
    return fail(DistStatus::Malformed,
                "shard " + std::to_string(report.shard.index) + "/" +
                    std::to_string(report.shard.count) +
                    " carries a non-canonical range");
  }
  if (report.rows.size() != report.end - report.begin) {
    return fail(DistStatus::Malformed,
                "shard " + std::to_string(report.shard.index) +
                    " row count disagrees with its range");
  }
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    if (report.rows[i].combination != report.begin + i) {
      return fail(DistStatus::Malformed,
                  "shard " + std::to_string(report.shard.index) +
                      " rows are not the ascending range");
    }
  }
  return {};
}

// Cross-shard header agreement against the reference report. Spec-key
// disagreement gets its own class (ForeignSpec — a report from a different
// model); everything else is Mismatch.
DistError check_same_job(const ShardReport& reference,
                         const ShardReport& report) {
  const std::string who = "shard " + std::to_string(report.shard.index);
  if (report.library_version != reference.library_version) {
    return fail(DistStatus::BadLibraryVersion,
                who + " was written by sorel " + report.library_version);
  }
  if (report.spec_key != reference.spec_key) {
    return fail(DistStatus::ForeignSpec,
                who + " describes a different spec (content key mismatch)");
  }
  if (report.service != reference.service || report.args != reference.args) {
    return fail(DistStatus::Mismatch,
                who + " evaluated a different service/arguments");
  }
  if (report.objective.time_weight != reference.objective.time_weight ||
      report.objective.min_reliability !=
          reference.objective.min_reliability) {
    return fail(DistStatus::Mismatch, who + " used a different objective");
  }
  if (report.point_names != reference.point_names ||
      report.radices != reference.radices ||
      report.total_combinations != reference.total_combinations) {
    return fail(DistStatus::Mismatch,
                who + " describes a different selection space");
  }
  if (report.shard.count != reference.shard.count) {
    return fail(DistStatus::Mismatch,
                who + " was cut as 1 of " + std::to_string(report.shard.count) +
                    ", not " + std::to_string(reference.shard.count));
  }
  return {};
}

}  // namespace

MergeResult merge(const std::vector<ShardReport>& shards) {
  MergeResult result;
  if (shards.empty()) {
    result.error = fail(DistStatus::Malformed, "no shard reports to merge");
    return result;
  }

  for (const ShardReport& report : shards) {
    DistError error = validate_report(report);
    if (!error.ok()) {
      result.error = std::move(error);
      return result;
    }
  }

  // Order-invariance: view the input through an index-sorted permutation.
  std::vector<const ShardReport*> ordered;
  ordered.reserve(shards.size());
  for (const ShardReport& report : shards) ordered.push_back(&report);
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardReport* a, const ShardReport* b) {
              return a->shard.index < b->shard.index;
            });
  const ShardReport& reference = *ordered.front();

  for (const ShardReport* report : ordered) {
    DistError error = check_same_job(reference, *report);
    if (!error.ok()) {
      result.error = std::move(error);
      return result;
    }
  }

  // Exact coverage: the indices must be 1..count, each exactly once. With
  // every per-report range pinned to the canonical split above, index
  // coverage is range coverage.
  const std::size_t count = reference.shard.count;
  if (shards.size() > count) {
    result.error = fail(DistStatus::CoverageOverlap,
                        std::to_string(shards.size()) + " reports for " +
                            std::to_string(count) + " shards");
    return result;
  }
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const std::size_t expected = i + 1;
    const std::size_t got = ordered[i]->shard.index;
    if (got == expected) continue;
    if (i > 0 && got == ordered[i - 1]->shard.index) {
      result.error = fail(DistStatus::CoverageOverlap,
                          "shard " + std::to_string(got) +
                              " appears more than once");
    } else {
      result.error = fail(DistStatus::CoverageGap,
                          "shard " + std::to_string(expected) + " of " +
                              std::to_string(count) + " is missing");
    }
    return result;
  }
  if (ordered.size() < count) {
    result.error = fail(DistStatus::CoverageGap,
                        "shard " + std::to_string(ordered.size() + 1) + " of " +
                            std::to_string(count) + " is missing");
    return result;
  }

  MergedReport merged;
  merged.library_version = reference.library_version;
  merged.spec_key = reference.spec_key;
  merged.service = reference.service;
  merged.args = reference.args;
  merged.objective = reference.objective;
  merged.point_names = reference.point_names;
  merged.radices = reference.radices;
  merged.total_combinations = reference.total_combinations;
  merged.shard_count = count;
  merged.rows.reserve(reference.total_combinations);
  for (const ShardReport* report : ordered) {
    merged.rows.insert(merged.rows.end(), report->rows.begin(),
                       report->rows.end());
    merged.stats.physical_evaluations += report->stats.physical_evaluations;
    merged.stats.shared_hits += report->stats.shared_hits;
    merged.stats.shared_misses += report->stats.shared_misses;
  }

  // The ranking: kept rows by score descending; stable sort over the
  // ascending-combination row order makes the tie-break "lowest combination
  // index first" — a total order, so the ranking is unique.
  for (std::size_t i = 0; i < merged.rows.size(); ++i) {
    const core::CombinationOutcome& row = merged.rows[i];
    if (row.ok && row.kept) merged.ranking.push_back(i);
    if (!row.ok) merged.errors.push_back(i);
  }
  std::stable_sort(merged.ranking.begin(), merged.ranking.end(),
                   [&](std::size_t a, std::size_t b) {
                     return merged.rows[a].score > merged.rows[b].score;
                   });

  result.report = std::move(merged);
  return result;
}

json::Value merged_to_json(const MergedReport& report) {
  json::Object object;
  object["format"] = kMergedFormatName;
  object["format_version"] = static_cast<double>(kReportFormatVersion);
  object["library_version"] = report.library_version;
  {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(report.spec_key));
    object["spec_key"] = std::string(buffer);
  }
  object["service"] = report.service;
  json::Array args;
  for (double arg : report.args) args.emplace_back(arg);
  object["args"] = std::move(args);
  json::Object objective;
  objective["time_weight"] = report.objective.time_weight;
  objective["min_reliability"] = report.objective.min_reliability;
  object["objective"] = std::move(objective);
  json::Array points;
  for (const std::string& name : report.point_names) points.emplace_back(name);
  object["points"] = std::move(points);
  json::Array radices;
  for (std::size_t radix : report.radices) radices.emplace_back(radix);
  object["radices"] = std::move(radices);
  object["total_combinations"] = report.total_combinations;
  object["shards"] = report.shard_count;

  json::Array rows;
  rows.reserve(report.rows.size());
  for (const core::CombinationOutcome& row : report.rows) {
    json::Object row_object;
    row_object["combination"] = row.combination;
    json::Array choice;
    for (std::size_t digit : row.choice) choice.emplace_back(digit);
    row_object["choice"] = std::move(choice);
    json::Array labels;
    for (const std::string& label : row.labels) labels.emplace_back(label);
    row_object["labels"] = std::move(labels);
    row_object["ok"] = row.ok;
    if (row.ok) {
      row_object["kept"] = row.kept;
      row_object["reliability"] = row.reliability;
      row_object["expected_duration"] = row.expected_duration;
      row_object["score"] = row.score;
      row_object["evaluations"] = static_cast<double>(row.evaluations);
      row_object["states"] = static_cast<double>(row.states);
      row_object["expr_evaluations"] = static_cast<double>(row.expr_evaluations);
    } else {
      row_object["error"] = row.error;
      row_object["message"] = row.message;
    }
    rows.push_back(json::Value(std::move(row_object)));
  }
  object["rows"] = std::move(rows);

  json::Array ranking;
  for (std::size_t index : report.ranking) {
    ranking.emplace_back(report.rows[index].combination);
  }
  object["ranking"] = std::move(ranking);
  json::Array errors;
  for (std::size_t index : report.errors) {
    errors.emplace_back(report.rows[index].combination);
  }
  object["errors"] = std::move(errors);

  json::Object stats;
  stats["physical_evaluations"] =
      static_cast<double>(report.stats.physical_evaluations);
  stats["shared_hits"] = static_cast<double>(report.stats.shared_hits);
  stats["shared_misses"] = static_cast<double>(report.stats.shared_misses);
  object["stats"] = std::move(stats);

  json::Value document(std::move(object));
  {
    json::Object body = document.as_object();
    body.erase("crc64");
    const std::string bytes = json::Value(std::move(body)).dump();
    const std::uint64_t crc = snap::crc64(bytes.data(), bytes.size());
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(crc));
    document.as_object()["crc64"] = std::string(buffer);
  }
  return document;
}

std::string logical_dump(const json::Value& document) {
  json::Object body = document.as_object();
  body.erase("stats");
  body.erase("crc64");
  // How many workers computed a merged report is execution topology, not
  // content: 1-shard and 8-shard runs must project to the same bytes.
  body.erase("shards");
  return json::Value(std::move(body)).dump();
}

}  // namespace sorel::dist
