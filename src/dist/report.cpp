// Shard-report serialization and the distrustful loader/file layer. The
// document format is JSON on purpose: json::Object iteration is sorted and
// numbers print via %.17g (exact double round trip), so `dump()` is a
// canonical form — which is what lets a CRC-64 seal survive a parse/re-dump
// cycle and lets the differential tests compare reports byte for byte.

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "sorel/dist/dist.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/util/error.hpp"

#ifndef SOREL_VERSION_STRING
#define SOREL_VERSION_STRING "0.0.0-unversioned"
#endif

namespace sorel::dist {

namespace {

// Largest integer exact in a double — combination indices and counters are
// carried as JSON numbers, so anything past this is corruption.
constexpr double kMaxExact = 9007199254740992.0;  // 2^53

constexpr const char* kStatusNames[] = {
    "ok",
    "not_found",
    "io_error",
    "malformed",
    "bad_format",
    "bad_format_version",
    "bad_library_version",
    "bad_checksum",
    "foreign_spec",
    "mismatch",
    "coverage_gap",
    "coverage_overlap",
};

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool parse_hex64(const std::string& text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  out = value;
  return true;
}

// A nonnegative integer exact in a double, or failure.
bool to_count(const json::Value& value, std::uint64_t& out) {
  if (!value.is_number()) return false;
  const double d = value.as_number();
  if (!(d >= 0.0) || d > kMaxExact || d != std::floor(d)) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool to_index(const json::Value& value, std::size_t& out) {
  std::uint64_t wide = 0;
  if (!to_count(value, wide)) return false;
  out = static_cast<std::size_t>(wide);
  return true;
}

DistError fail(DistStatus status, std::string detail) {
  return DistError{status, std::move(detail)};
}

// The seal: CRC-64/XZ over the canonical dump of the document without its
// `crc64` member.
std::uint64_t seal_checksum(const json::Value& document) {
  json::Object body = document.as_object();
  body.erase("crc64");
  const std::string bytes = json::Value(std::move(body)).dump();
  return snap::crc64(bytes.data(), bytes.size());
}

json::Value row_to_json(const core::CombinationOutcome& row) {
  json::Object object;
  object["combination"] = row.combination;
  json::Array choice;
  for (std::size_t digit : row.choice) choice.emplace_back(digit);
  object["choice"] = std::move(choice);
  json::Array labels;
  for (const std::string& label : row.labels) labels.emplace_back(label);
  object["labels"] = std::move(labels);
  object["ok"] = row.ok;
  if (row.ok) {
    object["kept"] = row.kept;
    object["reliability"] = row.reliability;
    object["expected_duration"] = row.expected_duration;
    object["score"] = row.score;
    object["evaluations"] = static_cast<double>(row.evaluations);
    object["states"] = static_cast<double>(row.states);
    object["expr_evaluations"] = static_cast<double>(row.expr_evaluations);
  } else {
    object["error"] = row.error;
    object["message"] = row.message;
  }
  return json::Value(std::move(object));
}

// Decode and validate one row against its expected combination index and
// the point radices. Throws sorel::InvalidArgument (mapped to Malformed by
// the caller) with a row-pinpointing detail.
core::CombinationOutcome row_from_json(const json::Value& value,
                                       std::size_t expected_combination,
                                       const std::vector<std::size_t>& radices) {
  core::CombinationOutcome row;
  const json::Object& object = value.as_object();
  (void)object;  // type check above; fields accessed via at()
  if (!to_index(value.at("combination"), row.combination) ||
      row.combination != expected_combination) {
    throw InvalidArgument("row combination out of order (expected " +
                          std::to_string(expected_combination) + ")");
  }
  const json::Array& choice = value.at("choice").as_array();
  if (choice.size() != radices.size()) {
    throw InvalidArgument("row choice width disagrees with the points");
  }
  std::size_t rest = row.combination;  // mixed radix, least significant first
  row.choice.reserve(radices.size());
  for (std::size_t i = 0; i < radices.size(); ++i) {
    std::size_t digit = 0;
    if (!to_index(choice[i], digit) || digit >= radices[i]) {
      throw InvalidArgument("row choice digit out of range");
    }
    if (digit != rest % radices[i]) {
      throw InvalidArgument("row choice disagrees with its combination index");
    }
    rest /= radices[i];
    row.choice.push_back(digit);
  }
  const json::Array& labels = value.at("labels").as_array();
  if (labels.size() != radices.size()) {
    throw InvalidArgument("row labels width disagrees with the points");
  }
  row.labels.reserve(labels.size());
  for (const json::Value& label : labels) row.labels.push_back(label.as_string());
  row.ok = value.at("ok").as_bool();
  if (row.ok) {
    row.kept = value.at("kept").as_bool();
    row.reliability = value.at("reliability").as_number();
    row.expected_duration = value.at("expected_duration").as_number();
    row.score = value.at("score").as_number();
    if (!to_count(value.at("evaluations"), row.evaluations) ||
        !to_count(value.at("states"), row.states) ||
        !to_count(value.at("expr_evaluations"), row.expr_evaluations)) {
      throw InvalidArgument("row logical counters must be exact nonnegative integers");
    }
  } else {
    row.error = value.at("error").as_string();
    row.message = value.at("message").as_string();
    if (row.error.empty()) {
      throw InvalidArgument("error row carries an empty error category");
    }
  }
  return row;
}

}  // namespace

const char* dist_status_name(DistStatus status) noexcept {
  const auto index = static_cast<std::size_t>(status);
  if (index >= std::size(kStatusNames)) return "unknown";
  return kStatusNames[index];
}

ShardSpec parse_shard_spec(std::string_view text) {
  const auto fail_parse = [&] {
    throw InvalidArgument("--shard expects k/n with 1 <= k <= n (got \"" +
                          std::string(text) + "\")");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    fail_parse();
  }
  const auto parse_part = [&](std::string_view part) -> std::size_t {
    if (part.empty() || part.size() > 9) fail_parse();
    std::size_t value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') fail_parse();
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
  };
  ShardSpec spec;
  spec.index = parse_part(text.substr(0, slash));
  spec.count = parse_part(text.substr(slash + 1));
  if (spec.count == 0 || spec.index == 0 || spec.index > spec.count) {
    fail_parse();
  }
  return spec;
}

std::pair<std::size_t, std::size_t> shard_range(const ShardSpec& spec,
                                                std::size_t total) {
  if (spec.count == 0 || spec.index == 0 || spec.index > spec.count) {
    throw InvalidArgument("shard_range: invalid shard " +
                          std::to_string(spec.index) + "/" +
                          std::to_string(spec.count));
  }
  // Balanced split: the first total%count shards get one extra combination,
  // so the count ranges partition [0, total) exactly.
  const std::size_t base = total / spec.count;
  const std::size_t extra = total % spec.count;
  const std::size_t k = spec.index - 1;
  const std::size_t begin = k * base + std::min(k, extra);
  const std::size_t end = begin + base + (k < extra ? 1 : 0);
  return {begin, end};
}

json::Value report_to_json(const ShardReport& report) {
  json::Object object;
  object["format"] = kShardFormatName;
  object["format_version"] = static_cast<double>(report.format_version);
  object["library_version"] = report.library_version;
  object["spec_key"] = hex64(report.spec_key);
  object["service"] = report.service;
  json::Array args;
  for (double arg : report.args) args.emplace_back(arg);
  object["args"] = std::move(args);
  json::Object objective;
  objective["time_weight"] = report.objective.time_weight;
  objective["min_reliability"] = report.objective.min_reliability;
  object["objective"] = std::move(objective);
  json::Array points;
  for (const std::string& name : report.point_names) points.emplace_back(name);
  object["points"] = std::move(points);
  json::Array radices;
  for (std::size_t radix : report.radices) radices.emplace_back(radix);
  object["radices"] = std::move(radices);
  object["total_combinations"] = report.total_combinations;
  json::Object shard;
  shard["index"] = report.shard.index;
  shard["count"] = report.shard.count;
  shard["begin"] = report.begin;
  shard["end"] = report.end;
  object["shard"] = std::move(shard);
  json::Array rows;
  rows.reserve(report.rows.size());
  for (const core::CombinationOutcome& row : report.rows) {
    rows.push_back(row_to_json(row));
  }
  object["rows"] = std::move(rows);
  json::Object stats;
  stats["physical_evaluations"] = static_cast<double>(report.stats.physical_evaluations);
  stats["shared_hits"] = static_cast<double>(report.stats.shared_hits);
  stats["shared_misses"] = static_cast<double>(report.stats.shared_misses);
  object["stats"] = std::move(stats);
  json::Value document(std::move(object));
  document.as_object()["crc64"] = hex64(seal_checksum(document));
  return document;
}

ReadResult report_from_string(std::string_view text) {
  ReadResult result;
  json::Value document;
  try {
    document = json::parse(text);
  } catch (const Error& e) {
    result.error = fail(DistStatus::Malformed,
                        std::string("not valid JSON: ") + e.what());
    return result;
  }
  if (!document.is_object() || !document.contains("format") ||
      !document.at("format").is_string()) {
    result.error = fail(DistStatus::BadFormat, "not a shard report document");
    return result;
  }
  if (document.at("format").as_string() != kShardFormatName) {
    result.error = fail(DistStatus::BadFormat,
                        "format \"" + document.at("format").as_string() +
                            "\" is not \"" + kShardFormatName + "\"");
    return result;
  }
  std::uint64_t format_version = 0;
  if (!document.contains("format_version") ||
      !to_count(document.at("format_version"), format_version)) {
    result.error = fail(DistStatus::Malformed, "missing format_version");
    return result;
  }
  if (format_version != kReportFormatVersion) {
    result.error = fail(DistStatus::BadFormatVersion,
                        "format version " + std::to_string(format_version) +
                            " (this build reads " +
                            std::to_string(kReportFormatVersion) + ")");
    return result;
  }
  if (!document.contains("library_version") ||
      !document.at("library_version").is_string()) {
    result.error = fail(DistStatus::Malformed, "missing library_version");
    return result;
  }
  if (document.at("library_version").as_string() != SOREL_VERSION_STRING) {
    result.error = fail(DistStatus::BadLibraryVersion,
                        "written by sorel " +
                            document.at("library_version").as_string() +
                            ", this build is " SOREL_VERSION_STRING);
    return result;
  }
  std::uint64_t claimed_crc = 0;
  if (!document.contains("crc64") || !document.at("crc64").is_string() ||
      !parse_hex64(document.at("crc64").as_string(), claimed_crc)) {
    result.error = fail(DistStatus::Malformed, "missing crc64 seal");
    return result;
  }
  if (seal_checksum(document) != claimed_crc) {
    result.error = fail(DistStatus::BadChecksum,
                        "crc64 mismatch: bit flip or torn write");
    return result;
  }

  // The document is sealed and ours; everything below is shape validation.
  // The json accessors throw on type mismatches — map any of that (plus the
  // explicit range checks) to one Malformed class.
  try {
    ShardReport report;
    report.format_version = static_cast<std::uint32_t>(format_version);
    report.library_version = document.at("library_version").as_string();
    if (!parse_hex64(document.at("spec_key").as_string(), report.spec_key)) {
      throw InvalidArgument("spec_key is not a 64-bit hex string");
    }
    report.service = document.at("service").as_string();
    if (report.service.empty()) throw InvalidArgument("empty service name");
    for (const json::Value& arg : document.at("args").as_array()) {
      report.args.push_back(arg.as_number());
    }
    const json::Value& objective = document.at("objective");
    report.objective.time_weight = objective.at("time_weight").as_number();
    report.objective.min_reliability =
        objective.at("min_reliability").as_number();
    for (const json::Value& name : document.at("points").as_array()) {
      report.point_names.push_back(name.as_string());
    }
    if (report.point_names.empty()) {
      throw InvalidArgument("a shard report needs at least one point");
    }
    std::size_t product = 1;
    for (const json::Value& radix : document.at("radices").as_array()) {
      std::size_t value = 0;
      if (!to_index(radix, value) || value == 0) {
        throw InvalidArgument("radices must be positive integers");
      }
      if (product > static_cast<std::size_t>(kMaxExact) / value) {
        throw InvalidArgument("radices product exceeds 2^53");
      }
      product *= value;
      report.radices.push_back(value);
    }
    if (report.radices.size() != report.point_names.size()) {
      throw InvalidArgument("radices must parallel points");
    }
    if (!to_index(document.at("total_combinations"),
                  report.total_combinations) ||
        report.total_combinations != product) {
      throw InvalidArgument(
          "total_combinations disagrees with the radices product");
    }
    const json::Value& shard = document.at("shard");
    if (!to_index(shard.at("index"), report.shard.index) ||
        !to_index(shard.at("count"), report.shard.count) ||
        report.shard.index == 0 || report.shard.count == 0 ||
        report.shard.index > report.shard.count) {
      throw InvalidArgument("invalid shard index/count");
    }
    if (!to_index(shard.at("begin"), report.begin) ||
        !to_index(shard.at("end"), report.end)) {
      throw InvalidArgument("invalid shard range");
    }
    const auto range = shard_range(report.shard, report.total_combinations);
    if (report.begin != range.first || report.end != range.second) {
      throw InvalidArgument(
          "shard range disagrees with the canonical split of the space");
    }
    const json::Array& rows = document.at("rows").as_array();
    if (rows.size() != report.end - report.begin) {
      throw InvalidArgument("row count disagrees with the shard range");
    }
    report.rows.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      report.rows.push_back(
          row_from_json(rows[i], report.begin + i, report.radices));
    }
    const json::Value& stats = document.at("stats");
    if (!to_count(stats.at("physical_evaluations"),
                  report.stats.physical_evaluations) ||
        !to_count(stats.at("shared_hits"), report.stats.shared_hits) ||
        !to_count(stats.at("shared_misses"), report.stats.shared_misses)) {
      throw InvalidArgument("stats counters must be exact nonnegative integers");
    }
    result.report = std::move(report);
  } catch (const Error& e) {
    result.report.reset();
    result.error = fail(DistStatus::Malformed, e.what());
  }
  return result;
}

SaveResult write_document_file(const json::Value& document,
                               const std::string& path) {
  SaveResult result;
  const std::string text = document.dump() + "\n";
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    result.error = fail(DistStatus::IoError,
                        "open " + temp + ": " + std::strerror(errno));
    return result;
  }
  // An injected fault tears the write: half the bytes reach the temp file,
  // then the writer fails as if the process died. The previous report at
  // `path` (if any) is untouched, and the torn temp file is never read.
  std::size_t goal = text.size();
  const bool torn = resil::chaos_fire(resil::Site::DistReportWrite);
  if (torn) goal = text.size() / 2;
  const std::size_t written = std::fwrite(text.data(), 1, goal, file);
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (torn) {
    result.error = fail(DistStatus::IoError,
                        "chaos: torn report write to " + temp);
    return result;
  }
  if (written != goal || !flushed) {
    std::remove(temp.c_str());
    result.error = fail(DistStatus::IoError,
                        "write " + temp + ": " + std::strerror(errno));
    return result;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    result.error = fail(DistStatus::IoError,
                        "rename " + temp + ": " + std::strerror(errno));
    std::remove(temp.c_str());
    return result;
  }
  result.bytes = text.size();
  return result;
}

SaveResult write_report_file(const ShardReport& report,
                             const std::string& path) {
  return write_document_file(report_to_json(report), path);
}

ReadResult read_report_file(const std::string& path) {
  ReadResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    const DistStatus status =
        errno == ENOENT ? DistStatus::NotFound : DistStatus::IoError;
    result.error = fail(status, "open " + path + ": " + std::strerror(errno));
    return result;
  }
  std::string text;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    result.error = fail(DistStatus::IoError,
                        "read " + path + ": " + std::strerror(errno));
    return result;
  }
  // An injected fault arrives as a short read; the truncated text flows
  // through the same validation as any real torn file and is rejected with
  // a structured error, never merged.
  if (resil::chaos_fire(resil::Site::DistReportRead)) {
    text.resize(text.size() / 2);
  }
  result = report_from_string(text);
  if (!result.ok()) result.error.detail += " (" + path + ")";
  return result;
}

}  // namespace sorel::dist
