// Automated service selection — the paper's motivating scenario: an
// assembler choosing among candidate services/connectors by predicted QoS.
// Both sort alternatives (local sort1 via LPC, remote sort2 via RPC) are
// registered in one assembly; the selector enumerates the wirings and ranks
// them, first by reliability alone (reproducing the figure-6 decision), then
// under a reliability/latency trade-off objective.
//
// Run: ./service_selection
#include <cstdio>

#include "sorel/core/selection.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::core::SelectionObjective;
using sorel::core::SelectionPoint;
using sorel::scenarios::SearchSortParams;

int main() {
  std::printf("automated selection of the search service's sort provider\n\n");
  std::printf("%-8s %-8s %-24s %-12s %s\n", "gamma", "list", "choice (by R)",
              "R", "runner-up R");

  for (const double gamma : {1e-1, 5e-2, 2.5e-2, 5e-3}) {
    for (const double list : {500.0, 5000.0}) {
      SearchSortParams p;
      p.gamma = gamma;
      auto setup = sorel::scenarios::build_search_selection_assembly(p);

      SelectionPoint point;
      point.service = "search";
      point.port = "sort";
      point.candidates = {setup.local_candidate, setup.remote_candidate};
      point.labels = {"sort1 via lpc (local)", "sort2 via rpc (remote)"};

      const std::vector<double> args{p.elem_size, list, p.result_size};
      const auto ranking =
          sorel::core::rank_assemblies(setup.assembly, "search", args, {point});
      std::printf("%-8.3g %-8g %-24s %-12.8f %.8f\n", gamma, list,
                  ranking[0].labels[0].c_str(), ranking[0].reliability,
                  ranking[1].reliability);
    }
  }

  // --- trade-off objective ----------------------------------------------------
  std::printf("\nwith latency in the objective (score = R - 0.1 * E[T]):\n");
  std::printf("%-8s %-24s %-12s %-12s %s\n", "gamma", "choice", "R", "E[T] (s)",
              "score");
  for (const double gamma : {5e-3, 1e-1}) {
    SearchSortParams p;
    p.gamma = gamma;
    auto setup = sorel::scenarios::build_search_selection_assembly(p);
    SelectionPoint point;
    point.service = "search";
    point.port = "sort";
    point.candidates = {setup.local_candidate, setup.remote_candidate};
    point.labels = {"local", "remote"};
    SelectionObjective objective;
    objective.time_weight = 0.1;
    const auto ranking = sorel::core::rank_assemblies(
        setup.assembly, "search", {p.elem_size, 2000.0, p.result_size}, {point},
        objective);
    for (const auto& entry : ranking) {
      std::printf("%-8.3g %-24s %-12.8f %-12.6g %.6f\n", gamma,
                  entry.labels[0].c_str(), entry.reliability,
                  entry.expected_duration, entry.score);
    }
  }
  std::printf(
      "\nAt gamma = 5e-3 the remote assembly is the most *reliable* choice, "
      "but the\nwire time makes the local assembly win any latency-aware "
      "objective — exactly\nthe multi-QoS selection problem the paper's "
      "introduction motivates.\n");
  return 0;
}
