// Published failure rates are estimates: what does the local-vs-remote
// decision look like when the network failure rate and the remote provider's
// software quality are only known up to an order of magnitude? Propagates
// attribute uncertainty through the exact analytic engine and reports
// reliability bands and the probability of meeting an SLA target.
//
// Run: ./uncertainty_analysis
#include <cmath>
#include <cstdio>

#include "sorel/core/uncertainty.hpp"
#include "sorel/scenarios/search_sort.hpp"

using sorel::core::AttributeDistribution;
using sorel::core::UncertaintyOptions;
using sorel::scenarios::AssemblyKind;
using sorel::scenarios::SearchSortParams;

int main() {
  SearchSortParams p;
  p.gamma = 2.5e-2;  // nominal network failure rate
  const double list = 2000.0;
  const std::vector<double> args{p.elem_size, list, p.result_size};
  const double target = 0.97;  // SLA: 97% per-invocation reliability

  UncertaintyOptions options;
  options.samples = 4'000;

  std::printf("uncertain inputs, search assembly, list = %g, SLA target R >= %g\n\n",
              list, target);
  std::printf("%-8s %-12s %-12s %-12s %-12s %s\n", "kind", "mean R", "p05", "p50",
              "p95", "P(R >= SLA)");

  // Local assembly: only sort1's software rate is uncertain (half an order
  // of magnitude each way around 1e-6).
  {
    auto assembly = build_search_assembly(AssemblyKind::kLocal, p);
    const auto result = sorel::core::propagate_uncertainty(
        assembly, "search", args,
        {{"sort1.phi", AttributeDistribution::log_uniform(3e-7, 3e-6)}}, options,
        target);
    std::printf("%-8s %-12.6f %-12.6f %-12.6f %-12.6f %.3f\n", "local",
                result.reliability.mean(), result.p05, result.p50, result.p95,
                result.probability_meets_target);
  }

  // Remote assembly: the network failure rate is uncertain over a full order
  // of magnitude, and the remote provider's claimed phi2 over half of one.
  {
    auto assembly = build_search_assembly(AssemblyKind::kRemote, p);
    const auto result = sorel::core::propagate_uncertainty(
        assembly, "search", args,
        {{"net12.beta", AttributeDistribution::log_uniform(5e-3, 5e-2)},
         {"sort2.phi", AttributeDistribution::log_uniform(3e-8, 3e-7)}},
        options, target);
    std::printf("%-8s %-12.6f %-12.6f %-12.6f %-12.6f %.3f\n", "remote",
                result.reliability.mean(), result.p05, result.p50, result.p95,
                result.probability_meets_target);
  }

  std::printf(
      "\nThe point predictions at nominal values hide most of the story: the\n"
      "remote assembly's reliability band is wide (it inherits the network's\n"
      "uncertainty), so a risk-averse assembler can prefer the local wiring\n"
      "even where the nominal comparison says otherwise.\n");
  return 0;
}
