// Quickstart: build the paper's search/sort example (section 4) with the
// public API, evaluate both assembly alternatives, and print the comparison
// that motivates architecture-based prediction: the "better" remote sort
// service can still be the wrong choice once the interconnection
// infrastructure's reliability is taken into account.
//
// Run: ./quickstart
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"

int main() {
  using sorel::scenarios::AssemblyKind;
  using sorel::scenarios::SearchSortParams;

  SearchSortParams params;
  params.phi_sort1 = 1e-6;  // local sort software: 10x worse than remote
  params.phi_sort2 = 1e-7;

  std::printf("sorel quickstart: the paper's search/sort example\n");
  std::printf("local sort phi1 = %.1e, remote sort phi2 = %.1e\n\n",
              params.phi_sort1, params.phi_sort2);
  std::printf("%-10s %-10s %-14s %-14s %s\n", "gamma", "list", "R(local)",
              "R(remote)", "winner");

  for (const double gamma : {1e-1, 5e-2, 2.5e-2, 5e-3}) {
    params.gamma = gamma;
    // Build the two candidate assemblies (figures 3 and 4 of the paper).
    sorel::core::Assembly local =
        build_search_assembly(AssemblyKind::kLocal, params);
    sorel::core::Assembly remote =
        build_search_assembly(AssemblyKind::kRemote, params);
    sorel::core::ReliabilityEngine local_engine(local);
    sorel::core::ReliabilityEngine remote_engine(remote);

    for (const double list : {100.0, 1000.0, 10000.0}) {
      const std::vector<double> args{params.elem_size, list, params.result_size};
      const double r_local = local_engine.reliability("search", args);
      const double r_remote = remote_engine.reliability("search", args);
      std::printf("%-10.3g %-10g %-14.8f %-14.8f %s\n", gamma, list, r_local,
                  r_remote, r_local >= r_remote ? "local" : "remote");
    }
    std::printf("\n");
  }

  std::printf(
      "Note how the remote assembly only wins on the most reliable network\n"
      "(gamma = 5e-3) even though its sort software is an order of magnitude\n"
      "more reliable -- the paper's figure 6 in table form.\n");
  return 0;
}
