// sorel_cli — command-line front end over the JSON assembly format: the
// "reliability prediction engine" the paper's section 5 imagines behind a
// machine-processable service-description language.
//
// Usage:
//   sorel_cli [--threads N] [--deadline-ms N] [--max-evals N] [--max-states N]
//             <command> <spec.json> [...]
//
//   sorel_cli validate    <spec.json>
//   sorel_cli list        <spec.json>
//   sorel_cli evaluate    <spec.json> <service> [arg...]
//   sorel_cli modes       <spec.json> <service> [arg...]
//   sorel_cli duration    <spec.json> <service> [arg...]
//   sorel_cli sensitivity <spec.json> <service> [arg...]
//   sorel_cli importance  <spec.json> <service> [arg...]
//   sorel_cli simulate    <spec.json> <service> <replications> [arg...]
//   sorel_cli select      <spec.json> <service> [arg...]
//   sorel_cli uncertainty <spec.json> <service> [arg...]
//   sorel_cli batch       <spec.json> <jobs.json>
//   sorel_cli inject      <spec.json> <campaign.json>
//   sorel_cli save        <spec.json>
//   sorel_cli dot         <spec.json> [service]
//   sorel_cli serve       [spec.json] [--listen host:port | unix:/path]
//   sorel_cli chaos-sites
//   sorel_cli version | --version
//   sorel_cli help | --help
//
// `select` ranks the candidate wirings declared in the document's
// "selection" array; `uncertainty` propagates the attribute distributions
// declared in its "uncertainty" object; `batch` evaluates a jobs file (an
// array of {"service", "args", "attributes", "pfail_overrides"} queries, or
// an object with such a "jobs" array) on the delta-based batch evaluator
// and emits one JSON result line per job; `inject` runs a fault-injection
// campaign file on warm sessions and emits one JSON line per scenario plus
// a summary line (see docs/FORMAT.md).
//
// Both batch and inject keep going on per-job failures: a malformed or
// failing job/scenario yields a JSON error line for that entry only, the
// rest of the batch still runs, and the process exits 3 at the end.
//
// `--threads N` (anywhere on the command line; also `--threads=N`) sets the
// worker count for the many-evaluation commands — uncertainty, select,
// sensitivity, importance, simulate, batch, inject. 0 (the default) uses
// every hardware thread; the SOREL_THREADS environment variable overrides
// that default. Results are bit-identical for every thread count.
//
// `--threads`, `--shared-memo=on|off`, and `--work-stealing=on|off`
// together form one runtime::ExecPolicy, applied uniformly to every
// analysis through its options.exec() accessor. `--work-stealing=off`
// falls back to static chunking on the legacy thread pool; results are
// bit-identical either way (the scheduler only changes which worker runs
// an item, never the item's global index).
//
// `--parallel-fixpoint` makes recursive specs converge by SCC-condensed
// fixed point on the sorel::sched task graph — independent strongly
// connected components solve in parallel, dependent ones in callee-first
// order — instead of one global damped sweep. Implies --allow-recursion.
// Values match the global solver within the fixed-point tolerance.
//
// `--deadline-ms N`, `--max-evals N`, `--max-states N` (also `=` forms) set
// a global work budget (sorel::guard) for evaluate/modes/batch/inject: each
// top-level query gets at most N milliseconds of wall clock / N logical
// engine evaluations / N flow-graph states. A job or scenario that busts the
// budget yields a `budget_exceeded` JSON error line carrying the partial
// work counters (evals done, states expanded, elapsed ms); sibling jobs keep
// running. Jobs files take a per-job `"budget"` object, campaign files a
// top-level and per-scenario `"budget"` (see docs/FORMAT.md).
//
// `serve` starts the long-lived evaluation daemon (sorel::serve): the spec
// is loaded once, sessions and the shared memo table stay warm across
// requests, and clients speak the line-delimited JSON protocol of
// docs/FORMAT.md §Serve. Default transport is stdin/stdout; `--listen
// host:port` serves TCP instead (port 0 picks an ephemeral port, announced
// on stderr) and `--listen unix:/path` serves a unix-domain stream socket.
// The spec argument is optional — a specless daemon answers evaluation
// requests with structured errors until a load_spec request arrives.
//
// `--snapshot PATH` (sorel::snap) persists the shared memo across process
// lifetimes: evaluate/modes/batch/inject/select warm-start from PATH when
// it holds a valid snapshot of the same spec and save their table back on
// exit; serve additionally answers `snapshot` requests and, with
// `--snapshot-interval MS`, autosaves in the background. Snapshots are
// written atomically and fully checksummed — a truncated, corrupted, or
// stale file degrades to a cold start (a note on stderr), never to a wrong
// answer, and results are bit-identical warm or cold.
//
// Exit status (docs/FORMAT.md §Exit status):
//   0  success
//   1  model/spec/evaluation errors (bad JSON, validation, engine failures)
//   2  usage errors — unknown command or option, missing operands; always a
//      single diagnostic line on stderr
//   3  batch/inject completed but some jobs or scenarios failed
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/faults/campaign_json.hpp"
#include "sorel/guard/budget.hpp"
#include "sorel/guard/budget_json.hpp"
#include "sorel/faults/runner.hpp"
#include "sorel/core/performance.hpp"
#include "sorel/core/selection.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/core/uncertainty.hpp"
#include "sorel/dist/dist.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/resil/chaos.hpp"
#include "sorel/resil/client.hpp"
#include "sorel/runtime/batch.hpp"
#include "sorel/runtime/exec_policy.hpp"
#include "sorel/serve/protocol.hpp"
#include "sorel/serve/server.hpp"
#include "sorel/serve/tcp.hpp"
#include "sorel/snap/snapshot.hpp"
#include "sorel/sim/simulator.hpp"
#include "sorel/util/error.hpp"

namespace {

/// Usage errors (unknown command/option, missing operand): one diagnostic
/// line on stderr, exit 2. The full help stays behind `sorel_cli help` so
/// scripted callers get a parseable single line.
int usage_error(const std::string& message) {
  std::fprintf(stderr, "sorel_cli: %s (run 'sorel_cli help' for usage)\n",
               message.c_str());
  return 2;
}

void print_help(std::FILE* out) {
  std::fprintf(out,
               "usage: sorel_cli [--threads N] [--deadline-ms N] [--max-evals N]"
               " [--max-states N]\n"
               "                 [--shared-memo=on|off] [--work-stealing=on|off]"
               " [--stats]\n"
               "                 <command> <spec.json> [...]\n"
               "commands:\n"
               "  validate    <spec>                     check the assembly\n"
               "  list        <spec>                     list services\n"
               "  evaluate    <spec> <service> [arg...]  Pfail / reliability\n"
               "  modes       <spec> <service> [arg...]  failure-mode split\n"
               "  duration    <spec> <service> [arg...]  expected time\n"
               "  sensitivity <spec> <service> [arg...]  dR/d(attribute)\n"
               "  importance  <spec> <service> [arg...]  Birnbaum measures\n"
               "  simulate    <spec> <service> <reps> [arg...]\n"
               "  select      <spec> <service> [arg...]  rank declared candidates\n"
               "  rank        <spec> <service> [arg...]  alias for select\n"
               "  merge-shards <out.json> <shard.json...>\n"
               "                                         merge --shard reports into\n"
               "                                         one deterministic ranking\n"
               "  uncertainty <spec> <service> [arg...]  propagate declared bands\n"
               "  batch       <spec> <jobs.json>         one JSON line per job\n"
               "  inject      <spec> <campaign.json>     fault-injection report\n"
               "  save        <spec>                     canonicalised document\n"
               "  dot         <spec> [service]           GraphViz output\n"
               "  serve       [spec] [--listen h:p]      long-lived JSON daemon\n"
               "  connect     <host:port|unix:/path> [reqs.jsonl]\n"
               "                                         drive a serve daemon with\n"
               "                                         timeouts/retries/backoff\n"
               "  chaos-sites                            list the compiled-in\n"
               "                                         chaos injection sites\n"
               "  version                                print version and exit\n"
               "  help                                   print this help\n"
               "options:\n"
               "  --threads N      workers for uncertainty/select/sensitivity/\n"
               "                   importance/simulate (0 = hardware concurrency;\n"
               "                   results are identical for every N)\n"
               "  --deadline-ms N  wall-clock budget per top-level query\n"
               "  --max-evals N    logical engine-evaluation budget per query\n"
               "  --max-states N   flow-graph state budget per query\n"
               "                   (evaluate/modes/batch/inject; a busted job\n"
               "                   yields a budget_exceeded error line)\n"
               "  --shared-memo=on|off\n"
               "                   share one cross-worker memo table between\n"
               "                   the worker sessions of batch/inject/select/\n"
               "                   uncertainty/sensitivity (default on;\n"
               "                   results are bit-identical either way)\n"
               "  --work-stealing=on|off\n"
               "                   run parallel loops on the work-stealing\n"
               "                   scheduler (default on) or fall back to\n"
               "                   static chunking; results are bit-identical\n"
               "                   either way\n"
               "  --stats          batch/inject: append one {\"stats\": ...}\n"
               "                   JSON line with the run's execution counters\n"
               "                   (shared-memo hits/misses/evictions included)\n"
               "  --listen h:p     serve: accept TCP clients on host:port\n"
               "                   instead of stdin/stdout (port 0 = ephemeral,\n"
               "                   announced on stderr); unix:/path serves a\n"
               "                   unix-domain stream socket instead\n"
               "  --snapshot PATH  persist the shared memo table across runs:\n"
               "                   evaluate/modes/batch/inject/select/serve\n"
               "                   warm-start from PATH when it holds a valid\n"
               "                   snapshot of the same spec and save on exit;\n"
               "                   a corrupt or stale file degrades to a cold\n"
               "                   start, never to a wrong answer\n"
               "  --snapshot-interval MS\n"
               "                   serve: autosave the snapshot every MS\n"
               "                   milliseconds in the background (0 = only on\n"
               "                   shutdown and explicit snapshot requests)\n"
               "  --allow-recursion\n"
               "                   evaluate recursive specs by fixed point\n"
               "                   instead of rejecting them (evaluate/modes/\n"
               "                   batch/inject/serve)\n"
               "  --parallel-fixpoint\n"
               "                   solve recursive specs by SCC-condensed\n"
               "                   fixed point on the task scheduler — \n"
               "                   independent cycles in parallel (implies\n"
               "                   --allow-recursion)\n"
               "  --max-pending N  serve: bound the admission queue; excess\n"
               "                   requests get a structured \"overloaded\"\n"
               "                   response with retry_after_ms (0 = unbounded)\n"
               "  --rate-limit C[:R]\n"
               "                   serve: per-client token bucket of C logical\n"
               "                   cost units, refilled at R units/s (R omitted\n"
               "                   or 0 = never; 0 capacity = off)\n"
               "  --timeout-ms N   connect: per-attempt response timeout\n"
               "  --retries N      connect: retries per request beyond the\n"
               "                   first attempt (transport + overloaded only)\n"
               "  --backoff-ms N   connect: base retry delay (exponential with\n"
               "                   seeded jitter, honours retry_after_ms)\n"
               "  --seed N         connect: jitter seed (same seed replays the\n"
               "                   same delay sequence)\n"
               "  --shard K/N      select/rank: evaluate only the K-th of N\n"
               "                   mixed-radix sub-ranges of the combination\n"
               "                   space and emit a checksummed shard report\n"
               "                   (JSON) instead of the ranking table; the\n"
               "                   per-shard range is bounded by\n"
               "                   max_combinations, so N shards lift the\n"
               "                   single-process cap N-fold\n"
               "  --out PATH       select/rank --shard: write the shard report\n"
               "                   to PATH (atomic temp+rename) instead of\n"
               "                   stdout\n"
               "  --chaos SPEC     install a deterministic fault plan in this\n"
               "                   process, e.g. seed=7,rate=0.1,\n"
               "                   sites=sched.task_start|memo.insert\n"
               "                   (equivalent to the SOREL_CHAOS env var)\n"
               "exit status: 0 success, 1 model/spec errors (connect: transport\n"
               "             gave up), 2 usage errors,\n"
               "             3 batch/inject/connect completed with failed entries\n");
}

/// Strip `--threads N` / `--threads=N` from argv (any position) and return
/// the requested worker count (0 = hardware concurrency). Throws
/// sorel::InvalidArgument on a malformed count.
std::size_t extract_threads_flag(int& argc, char** argv) {
  std::size_t threads = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--threads") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--threads needs a worker count");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      value = arg + 10;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    char* parse_end = nullptr;
    const long parsed = std::strtol(value, &parse_end, 10);
    if (parse_end == value || *parse_end != '\0' || parsed < 0) {
      throw sorel::InvalidArgument(std::string("--threads: not a count: '") +
                                   value + "'");
    }
    threads = static_cast<std::size_t>(parsed);
  }
  argc = out;
  return threads;
}

/// Strip `--deadline-ms N`, `--max-evals N`, `--max-states N` (and the `=`
/// forms) from argv and return the resulting work budget. Throws
/// sorel::InvalidArgument on a malformed value.
sorel::guard::Budget extract_budget_flags(int& argc, char** argv) {
  struct Flag {
    const char* name;
    bool is_count;  // false: positive ms (double); true: non-negative integer
  };
  static constexpr Flag kFlags[] = {{"--deadline-ms", false},
                                    {"--max-evals", true},
                                    {"--max-states", true}};
  sorel::guard::Budget budget;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const Flag* flag = nullptr;
    const char* value = nullptr;
    for (const Flag& candidate : kFlags) {
      const std::size_t len = std::strlen(candidate.name);
      if (std::strcmp(arg, candidate.name) == 0) {
        if (i + 1 >= argc) {
          throw sorel::InvalidArgument(std::string(candidate.name) +
                                       " needs a value");
        }
        flag = &candidate;
        value = argv[++i];
        break;
      }
      if (std::strncmp(arg, candidate.name, len) == 0 && arg[len] == '=') {
        flag = &candidate;
        value = arg + len + 1;
        break;
      }
    }
    if (flag == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    char* parse_end = nullptr;
    if (flag->is_count) {
      const long long parsed = std::strtoll(value, &parse_end, 10);
      if (parse_end == value || *parse_end != '\0' || parsed < 0) {
        throw sorel::InvalidArgument(std::string(flag->name) +
                                     ": not a count: '" + value + "'");
      }
      const auto count = static_cast<std::uint64_t>(parsed);
      if (std::strcmp(flag->name, "--max-evals") == 0) {
        budget.max_evaluations = count;
      } else {
        budget.max_states = count;
      }
    } else {
      const double parsed = std::strtod(value, &parse_end);
      if (parse_end == value || *parse_end != '\0' || !std::isfinite(parsed) ||
          parsed < 0.0) {
        throw sorel::InvalidArgument(
            std::string(flag->name) + ": not a millisecond count: '" + value +
            "'");
      }
      budget.deadline_ms = parsed;
    }
  }
  argc = out;
  return budget;
}

/// Strip `--shared-memo on|off` / `--shared-memo=on|off` from argv and
/// return whether cross-worker memo sharing is enabled (default: on).
/// Throws sorel::InvalidArgument on any other value.
bool extract_shared_memo_flag(int& argc, char** argv) {
  bool shared = true;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--shared-memo") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--shared-memo needs on|off");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--shared-memo=", 14) == 0) {
      value = arg + 14;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (std::strcmp(value, "on") == 0) {
      shared = true;
    } else if (std::strcmp(value, "off") == 0) {
      shared = false;
    } else {
      throw sorel::InvalidArgument(
          std::string("--shared-memo: expected on|off, got '") + value + "'");
    }
  }
  argc = out;
  return shared;
}

/// Strip `--work-stealing on|off` / `--work-stealing=on|off` from argv and
/// return whether parallel loops run on the work-stealing scheduler
/// (default: on; off falls back to static chunking — results are
/// bit-identical either way). Throws sorel::InvalidArgument on any other
/// value.
bool extract_work_stealing_flag(int& argc, char** argv) {
  bool stealing = true;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--work-stealing") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--work-stealing needs on|off");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--work-stealing=", 16) == 0) {
      value = arg + 16;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (std::strcmp(value, "on") == 0) {
      stealing = true;
    } else if (std::strcmp(value, "off") == 0) {
      stealing = false;
    } else {
      throw sorel::InvalidArgument(
          std::string("--work-stealing: expected on|off, got '") + value + "'");
    }
  }
  argc = out;
  return stealing;
}

/// Strip the presence flag `--stats` from argv; when set, batch/inject
/// append one {"stats": ...} JSON line to stdout after their per-item lines.
bool extract_stats_flag(int& argc, char** argv) {
  bool stats = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return stats;
}

/// Strip the presence flag `--allow-recursion` (serve: evaluate recursive
/// specs by fixed point instead of rejecting them).
bool extract_allow_recursion_flag(int& argc, char** argv) {
  bool allow = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-recursion") == 0) {
      allow = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return allow;
}

/// Strip the presence flag `--parallel-fixpoint` (solve recursive specs by
/// SCC-condensed fixed point on the task scheduler; implies
/// --allow-recursion).
bool extract_parallel_fixpoint_flag(int& argc, char** argv) {
  bool parallel = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--parallel-fixpoint") == 0) {
      parallel = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return parallel;
}

/// Where serve should accept clients: TCP host:port, or (when `unix_path`
/// is non-empty) a unix-domain stream socket.
struct ListenTarget {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string unix_path;
};

/// Strip `--listen host:port` / `--listen=host:port` (serve's TCP
/// transport). Accepts a bare port too ("0" = ephemeral on 127.0.0.1) and
/// `unix:/path` for a unix-domain socket. Throws sorel::InvalidArgument on
/// a malformed port, so the error lands on the usage-error exit path like
/// every other flag.
std::optional<ListenTarget> extract_listen_flag(int& argc, char** argv) {
  std::optional<ListenTarget> listen;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--listen") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--listen needs host:port or unix:/path");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--listen=", 9) == 0) {
      value = arg + 9;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    ListenTarget target;
    if (std::strncmp(value, "unix:", 5) == 0) {
      target.unix_path = value + 5;
      if (target.unix_path.empty()) {
        throw sorel::InvalidArgument("--listen: unix: needs a socket path");
      }
      listen = std::move(target);
      continue;
    }
    std::string port_text = value;
    if (const char* colon = std::strrchr(value, ':')) {
      target.host.assign(value, static_cast<std::size_t>(colon - value));
      port_text = colon + 1;
    }
    char* parse_end = nullptr;
    const long port = std::strtol(port_text.c_str(), &parse_end, 10);
    if (port_text.empty() || *parse_end != '\0' || port < 0 || port > 65535) {
      throw sorel::InvalidArgument("--listen: not a port: '" + port_text + "'");
    }
    target.port = static_cast<std::uint16_t>(port);
    listen = std::move(target);
  }
  argc = out;
  return listen;
}

/// Strip one `--name value` / `--name=value` flag whose value is a free-form
/// string (e.g. `--snapshot PATH`). Returns the value, or "" when absent.
std::string extract_string_flag(int& argc, char** argv, const char* name) {
  std::string result;
  const std::size_t len = std::strlen(name);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument(std::string(name) + " needs a value");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      value = arg + len + 1;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    if (*value == '\0') {
      throw sorel::InvalidArgument(std::string(name) +
                                   " needs a non-empty value");
    }
    result = value;
  }
  argc = out;
  return result;
}

/// Strip one `--name value` / `--name=value` flag whose value is a
/// non-negative number. Returns the parsed value, or `fallback` when the
/// flag is absent. Throws sorel::InvalidArgument on a malformed value.
double extract_number_flag(int& argc, char** argv, const char* name,
                           double fallback) {
  double result = fallback;
  const std::size_t len = std::strlen(name);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, name) == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument(std::string(name) + " needs a value");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      value = arg + len + 1;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    char* parse_end = nullptr;
    const double parsed = std::strtod(value, &parse_end);
    if (parse_end == value || *parse_end != '\0' || !std::isfinite(parsed) ||
        parsed < 0.0) {
      throw sorel::InvalidArgument(std::string(name) +
                                   ": not a non-negative number: '" + value +
                                   "'");
    }
    result = parsed;
  }
  argc = out;
  return result;
}

/// Strip `--rate-limit C[:R]` / `--rate-limit=C[:R]` (serve's per-client
/// token bucket: C logical cost units, refilled at R units per second).
std::pair<double, double> extract_rate_limit_flag(int& argc, char** argv) {
  std::pair<double, double> limit{0.0, 0.0};
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--rate-limit") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--rate-limit needs capacity[:refill]");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--rate-limit=", 13) == 0) {
      value = arg + 13;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    std::string capacity_text = value;
    std::string refill_text = "0";
    if (const char* colon = std::strchr(value, ':')) {
      capacity_text.assign(value, static_cast<std::size_t>(colon - value));
      refill_text = colon + 1;
    }
    char* parse_end = nullptr;
    const double capacity = std::strtod(capacity_text.c_str(), &parse_end);
    const bool capacity_ok = !capacity_text.empty() && *parse_end == '\0' &&
                             std::isfinite(capacity) && capacity >= 0.0;
    parse_end = nullptr;
    const double refill = std::strtod(refill_text.c_str(), &parse_end);
    const bool refill_ok = !refill_text.empty() && *parse_end == '\0' &&
                           std::isfinite(refill) && refill >= 0.0;
    if (!capacity_ok || !refill_ok) {
      throw sorel::InvalidArgument(
          std::string("--rate-limit: expected capacity[:refill], got '") +
          value + "'");
    }
    limit = {capacity, refill};
  }
  argc = out;
  return limit;
}

/// Strip `--chaos SPEC` / `--chaos=SPEC` and install the parsed fault plan
/// process-wide (the flag twin of the SOREL_CHAOS env var). Throws
/// sorel::InvalidArgument on a malformed spec.
void extract_chaos_flag(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strcmp(arg, "--chaos") == 0) {
      if (i + 1 >= argc) {
        throw sorel::InvalidArgument("--chaos needs a fault-plan spec");
      }
      value = argv[++i];
    } else if (std::strncmp(arg, "--chaos=", 8) == 0) {
      value = arg + 8;
    }
    if (value == nullptr) {
      argv[out++] = argv[i];
      continue;
    }
    sorel::resil::install_chaos(sorel::resil::FaultPlan::parse(value));
  }
  argc = out;
}

/// The shared-table counter block of a --stats line. The engine-side and
/// table-side counters differ by design: a table hit that stages a whole
/// subtree counts once here and once per staged entry on the engine side.
sorel::json::Object shared_cache_json(const sorel::memo::SharedMemoStats& s) {
  sorel::json::Object out;
  out["lookups"] = s.lookups;
  out["hits"] = s.hits;
  out["misses"] = s.misses;
  out["insertions"] = s.insertions;
  out["rejected"] = s.rejected;
  out["evictions"] = s.evictions;
  out["epoch"] = s.epoch;
  out["entries"] = s.entries;
  return out;
}

/// Attach the partial-work counters of a budget_exceeded / cancelled stop to
/// a JSON error line (satellite: deadline-expired jobs report how far they
/// got).
void append_guard_fields(sorel::json::Object& line, const std::string& limit,
                         std::uint64_t evaluations_done,
                         std::uint64_t states_expanded, double elapsed_ms) {
  if (!limit.empty()) line["limit"] = limit;
  line["evaluations_done"] = evaluations_done;
  line["states_expanded"] = states_expanded;
  line["elapsed_ms"] = elapsed_ms;
}

/// Apply the command-line execution flags onto an analysis options struct
/// through its exec() accessor, without disturbing the struct's own
/// defaults (each stochastic analysis keeps its documented seed).
template <typename Options>
void apply_exec_flags(Options& options, const sorel::runtime::ExecPolicy& exec) {
  options.exec()
      .with_threads(exec.threads)
      .with_shared_memo(exec.shared_memo)
      .with_work_stealing(exec.work_stealing);
}

/// Warm-start bracket shared by every snapshot-aware command: build the
/// cross-worker table over the base assembly, try to load `path` into it,
/// and report the outcome on stderr. Any rejection — missing file,
/// truncation, bit flip, stale spec, foreign build — degrades to the exact
/// cold start the command would have had without a snapshot; results are
/// bit-identical either way. Returns nullptr when no path was requested.
std::shared_ptr<sorel::memo::SharedMemo> snapshot_open(
    const std::string& path, const sorel::core::Assembly& assembly,
    std::uint64_t& key) {
  if (path.empty()) return nullptr;
  auto table = sorel::core::make_shared_memo(assembly);
  key = sorel::snap::spec_key(assembly);
  const auto warm = sorel::snap::load_snapshot(path, *table, key);
  if (warm.ok()) {
    std::fprintf(stderr, "snapshot: warm start from %s (%zu entries)\n",
                 path.c_str(), warm.entries);
  } else if (warm.error.status != sorel::snap::SnapStatus::NotFound) {
    std::fprintf(stderr, "snapshot: cold start, %s rejected (%s: %s)\n",
                 path.c_str(),
                 sorel::snap::snap_status_name(warm.error.status),
                 warm.error.detail.c_str());
  }
  return table;
}

/// Save the table back on command exit. A save failure is a stderr note
/// only: the exit code reports the analysis, not the cache, and the
/// previous snapshot (if any) is still intact on disk.
void snapshot_close(const std::string& path,
                    const std::shared_ptr<sorel::memo::SharedMemo>& table,
                    std::uint64_t key) {
  if (!table) return;
  const auto saved = sorel::snap::save_snapshot(path, *table, key);
  if (saved.ok()) {
    std::fprintf(stderr, "snapshot: saved %zu entries (%zu bytes) to %s\n",
                 saved.entries, saved.bytes, path.c_str());
  } else {
    std::fprintf(stderr, "snapshot: save to %s failed (%s: %s)\n",
                 path.c_str(),
                 sorel::snap::snap_status_name(saved.error.status),
                 saved.error.detail.c_str());
  }
}

std::vector<double> parse_args(char** begin, char** end) {
  std::vector<double> out;
  for (char** it = begin; it != end; ++it) {
    char* parse_end = nullptr;
    const double v = std::strtod(*it, &parse_end);
    if (parse_end == *it || *parse_end != '\0') {
      throw sorel::InvalidArgument(std::string("not a number: '") + *it + "'");
    }
    if (!std::isfinite(v)) {
      throw sorel::InvalidArgument(std::string("argument must be finite: '") +
                                   *it + "'");
    }
    out.push_back(v);
  }
  return out;
}

int cmd_validate(const sorel::core::Assembly& assembly) {
  assembly.validate();  // load already validated; explicit for the message
  std::printf("ok: %zu services, %zu bindings\n", assembly.service_names().size(),
              assembly.bindings().size());
  return 0;
}

int cmd_list(const sorel::core::Assembly& assembly) {
  for (const std::string& name : assembly.service_names()) {
    const auto& svc = assembly.service(name);
    std::printf("%-24s %-10s arity %zu", name.c_str(),
                svc->is_simple() ? "simple" : "composite", svc->arity());
    if (!svc->formals().empty()) {
      std::printf("  (");
      for (std::size_t i = 0; i < svc->formals().size(); ++i) {
        std::printf("%s%s", i ? ", " : "", svc->formals()[i].name.c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
  }
  return 0;
}

/// Engine configuration shared by evaluate/modes: --allow-recursion turns
/// rejection of recursive specs into fixed-point convergence, and
/// --parallel-fixpoint (which implies it) solves the condensation's SCCs as
/// scheduler tasks.
sorel::core::ReliabilityEngine::Options engine_options(bool allow_recursion,
                                                       bool parallel_fixpoint) {
  sorel::core::ReliabilityEngine::Options options;
  options.allow_recursion = allow_recursion || parallel_fixpoint;
  options.parallel_fixpoint = parallel_fixpoint;
  return options;
}

int cmd_evaluate(const sorel::core::Assembly& assembly, const std::string& service,
                 const std::vector<double>& args,
                 const sorel::guard::Budget& budget, bool allow_recursion,
                 bool parallel_fixpoint, const std::string& snapshot_path) {
  sorel::core::ReliabilityEngine engine(
      assembly, engine_options(allow_recursion, parallel_fixpoint));
  engine.set_budget(budget);
  std::uint64_t snap_key = 0;
  const auto table = snapshot_open(snapshot_path, assembly, snap_key);
  if (table) engine.attach_shared_memo(table);
  const double pfail = engine.pfail(service, args);
  snapshot_close(snapshot_path, table, snap_key);
  std::printf("Pfail       = %.12g\n", pfail);
  std::printf("reliability = %.12g\n", 1.0 - pfail);
  std::printf("evaluations = %zu (memo hits %zu)\n", engine.stats().evaluations,
              engine.stats().memo_hits);
  // Only recursive specs print a fixed-point line, so acyclic output stays
  // byte-stable.
  if (engine.stats().fixpoint_iterations > 0) {
    std::printf("fixed point = %zu iterations over %zu sccs\n",
                engine.stats().fixpoint_iterations,
                engine.stats().fixpoint_sccs);
  }
  return 0;
}

int cmd_modes(const sorel::core::Assembly& assembly, const std::string& service,
              const std::vector<double>& args,
              const sorel::guard::Budget& budget, bool allow_recursion,
              bool parallel_fixpoint, const std::string& snapshot_path) {
  sorel::core::ReliabilityEngine engine(
      assembly, engine_options(allow_recursion, parallel_fixpoint));
  engine.set_budget(budget);
  std::uint64_t snap_key = 0;
  const auto table = snapshot_open(snapshot_path, assembly, snap_key);
  if (table) engine.attach_shared_memo(table);
  const auto modes = engine.failure_modes(service, args);
  snapshot_close(snapshot_path, table, snap_key);
  std::printf("success          = %.12g\n", modes.success);
  std::printf("detected failure = %.12g\n", modes.detected_failure);
  std::printf("silent failure   = %.12g\n", modes.silent_failure);
  return 0;
}

int cmd_duration(const sorel::core::Assembly& assembly, const std::string& service,
                 const std::vector<double>& args) {
  sorel::core::PerformanceEngine sequential(assembly);
  std::printf("expected time (sequential AND) = %.12g\n",
              sequential.expected_duration(service, args));
  sorel::core::PerformanceEngine::Options options;
  options.parallel_and = true;
  sorel::core::PerformanceEngine parallel(assembly, options);
  std::printf("expected time (parallel AND)   = %.12g\n",
              parallel.expected_duration(service, args));
  return 0;
}

int cmd_sensitivity(const sorel::core::Assembly& assembly,
                    const std::string& service, const std::vector<double>& args,
                    const sorel::runtime::ExecPolicy& exec) {
  sorel::core::SensitivityOptions options;
  apply_exec_flags(options, exec);
  const auto rows = sorel::core::attribute_sensitivities(assembly, service, args,
                                                         options, {});
  std::printf("%-24s %-14s %-14s %s\n", "attribute", "value", "dR/da",
              "elasticity");
  for (const auto& row : rows) {
    std::printf("%-24s %-14.6g %-14.6g %.6g\n", row.attribute.c_str(), row.value,
                row.derivative, row.elasticity);
  }
  return 0;
}

int cmd_importance(const sorel::core::Assembly& assembly,
                   const std::string& service, const std::vector<double>& args,
                   const sorel::runtime::ExecPolicy& exec) {
  const auto rows =
      sorel::core::component_importances(assembly, service, args, exec, {});
  std::printf("%-24s %-14s %s\n", "component", "Birnbaum", "risk-achievement");
  for (const auto& row : rows) {
    std::printf("%-24s %-14.6g %.6g\n", row.component.c_str(), row.birnbaum,
                row.risk_achievement);
  }
  return 0;
}

int cmd_simulate(const sorel::core::Assembly& assembly, const std::string& service,
                 std::size_t replications, const std::vector<double>& args,
                 const sorel::runtime::ExecPolicy& exec) {
  sorel::sim::Simulator simulator(assembly);
  sorel::sim::SimulationOptions options;
  options.replications = replications;
  apply_exec_flags(options, exec);
  const auto result = simulator.estimate(service, args, options);
  const auto ci = result.confidence_interval();
  std::printf("reliability = %.8f  (95%% CI [%.8f, %.8f], %zu replications)\n",
              result.reliability(), ci.lower, ci.upper, result.replications);
  sorel::core::ReliabilityEngine engine(assembly);
  std::printf("analytic    = %.8f\n", engine.reliability(service, args));
  return 0;
}

/// Worker mode (`select --shard k/n`): evaluate only the shard's sub-range
/// and emit the checksummed report — to stdout, or atomically to `--out`.
/// Per-combination evaluation errors are structured rows, not aborts, and
/// surface as exit 3 (the batch/inject "completed with failed entries"
/// convention); the report itself still merges.
int cmd_select_shard(const sorel::core::Assembly& assembly,
                     const std::string& service,
                     const std::vector<double>& args,
                     const std::vector<sorel::core::SelectionPoint>& points,
                     const sorel::core::SelectionOptions& options,
                     const sorel::dist::ShardSpec& shard,
                     const std::string& out_path) {
  const auto report =
      sorel::dist::run_shard(assembly, service, args, points, shard, options);
  int exit_code = 0;
  for (const auto& row : report.rows) {
    if (!row.ok) exit_code = 3;
  }
  if (out_path.empty()) {
    std::printf("%s\n", sorel::dist::report_to_json(report).dump().c_str());
    return exit_code;
  }
  const auto saved = sorel::dist::write_report_file(report, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: shard report write failed (%s: %s)\n",
                 sorel::dist::dist_status_name(saved.error.status),
                 saved.error.detail.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "shard %zu/%zu: combinations [%zu, %zu) of %zu, %zu rows -> %s\n",
               report.shard.index, report.shard.count, report.begin, report.end,
               report.total_combinations, report.rows.size(), out_path.c_str());
  return exit_code;
}

int cmd_select(const sorel::core::Assembly& assembly,
               const sorel::json::Value& document, const std::string& service,
               const std::vector<double>& args,
               const sorel::runtime::ExecPolicy& exec,
               const std::string& snapshot_path,
               const std::optional<sorel::dist::ShardSpec>& shard,
               const std::string& out_path) {
  const auto points = sorel::dsl::load_selection_points(document);
  if (points.empty()) {
    std::fprintf(stderr, "error: the document declares no \"selection\" points\n");
    return 1;
  }
  sorel::core::SelectionOptions options;
  options.max_combinations = 4096;
  apply_exec_flags(options, exec);
  std::uint64_t snap_key = 0;
  if (options.shared_memo) {
    options.shared_cache = snapshot_open(snapshot_path, assembly, snap_key);
  }
  if (shard) {
    const int exit_code = cmd_select_shard(assembly, service, args, points,
                                           options, *shard, out_path);
    snapshot_close(snapshot_path, options.shared_cache, snap_key);
    return exit_code;
  }
  const auto ranking =
      sorel::core::rank_assemblies(assembly, service, args, points, options);
  snapshot_close(snapshot_path, options.shared_cache, snap_key);
  std::printf("%-6s %-14s %s\n", "rank", "reliability", "choice");
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    std::string choice;
    for (std::size_t j = 0; j < ranking[i].labels.size(); ++j) {
      if (j) choice += ", ";
      choice += points[j].service + "." + points[j].port + " = " +
                ranking[i].labels[j];
    }
    std::printf("%-6zu %-14.8f %s\n", i + 1, ranking[i].reliability,
                choice.c_str());
  }
  return 0;
}

/// Coordinator mode: validate + merge shard reports into one deterministic
/// ranking, written atomically to <out.json>. Any rejected report or
/// coverage hole (gap, overlap, foreign spec, version skew, bit flip) is a
/// structured refusal with exit 1 — never a silently partial ranking. Error
/// rows inside an otherwise valid merge exit 3, like batch/inject.
int cmd_merge_shards(const std::string& out_path, char** begin, char** end) {
  std::vector<sorel::dist::ShardReport> shards;
  for (char** it = begin; it != end; ++it) {
    auto loaded = sorel::dist::read_report_file(*it);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: shard report rejected (%s: %s)\n",
                   sorel::dist::dist_status_name(loaded.error.status),
                   loaded.error.detail.c_str());
      return 1;
    }
    shards.push_back(std::move(*loaded.report));
  }
  auto merged = sorel::dist::merge(shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "error: merge refused (%s: %s)\n",
                 sorel::dist::dist_status_name(merged.error.status),
                 merged.error.detail.c_str());
    return 1;
  }
  const auto document = sorel::dist::merged_to_json(*merged.report);
  const auto saved = sorel::dist::write_document_file(document, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: merged report write failed (%s: %s)\n",
                 sorel::dist::dist_status_name(saved.error.status),
                 saved.error.detail.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "merge-shards: %zu shards, %zu combinations, %zu ranked, "
               "%zu errors -> %s\n",
               merged.report->shard_count, merged.report->rows.size(),
               merged.report->ranking.size(), merged.report->errors.size(),
               out_path.c_str());
  return merged.report->errors.empty() ? 0 : 3;
}

int cmd_uncertainty(const sorel::core::Assembly& assembly,
                    const sorel::json::Value& document, const std::string& service,
                    const std::vector<double>& args,
                    const sorel::runtime::ExecPolicy& exec) {
  const auto distributions = sorel::dsl::load_uncertainty(document);
  if (distributions.empty()) {
    std::fprintf(stderr,
                 "error: the document declares no \"uncertainty\" object\n");
    return 1;
  }
  sorel::core::UncertaintyOptions options;
  apply_exec_flags(options, exec);
  const auto result = sorel::core::propagate_uncertainty(assembly, service, args,
                                                         distributions, options);
  std::printf("samples     = %zu\n", result.reliability.count());
  std::printf("mean R      = %.8f (stddev %.2e)\n", result.reliability.mean(),
              result.reliability.stddev());
  std::printf("p05/p50/p95 = %.8f / %.8f / %.8f\n", result.p05, result.p50,
              result.p95);
  std::printf("min/max     = %.8f / %.8f\n", result.reliability.min(),
              result.reliability.max());
  return 0;
}

int cmd_batch(const sorel::core::Assembly& assembly, const char* jobs_path,
              const sorel::runtime::ExecPolicy& exec,
              const sorel::guard::Budget& budget, bool allow_recursion,
              bool parallel_fixpoint, bool emit_stats,
              const std::string& snapshot_path) {
  const sorel::json::Value doc = sorel::json::parse_file(jobs_path);
  const sorel::json::Value& jobs_value = doc.is_object() ? doc.at("jobs") : doc;
  if (!jobs_value.is_array()) {
    std::fprintf(stderr,
                 "error: jobs file must be a JSON array of jobs or an object "
                 "with a \"jobs\" array\n");
    return 1;
  }

  // Keep-going parse: a malformed entry degrades to an error line for that
  // job only; the well-formed jobs still run.
  struct ParsedJob {
    std::optional<sorel::runtime::BatchJob> job;
    std::string error_category;
    std::string error_message;
  };
  std::vector<ParsedJob> parsed(jobs_value.size());
  std::vector<sorel::runtime::BatchJob> jobs;
  jobs.reserve(jobs_value.size());
  for (std::size_t i = 0; i < jobs_value.size(); ++i) {
    const sorel::json::Value& entry = jobs_value.at(i);
    try {
      sorel::runtime::BatchJob job;
      job.service = entry.at("service").as_string();
      if (entry.contains("args")) {
        for (const sorel::json::Value& a : entry.at("args").as_array()) {
          job.args.push_back(a.as_number());
        }
      }
      if (entry.contains("attributes")) {
        for (const auto& [name, value] : entry.at("attributes").as_object()) {
          job.attribute_overrides[name] = value.as_number();
        }
      }
      if (entry.contains("pfail_overrides")) {
        for (const auto& [name, value] : entry.at("pfail_overrides").as_object()) {
          job.pfail_overrides[name] = value.as_number();
        }
      }
      if (entry.contains("budget")) {
        job.budget = sorel::guard::budget_from_json(
            entry.at("budget"), "job #" + std::to_string(i) + ": budget");
      }
      parsed[i].job = std::move(job);
    } catch (const std::exception& e) {
      parsed[i].error_category = sorel::error_category(e);
      parsed[i].error_message = e.what();
    }
    if (parsed[i].job) jobs.push_back(*parsed[i].job);
  }

  sorel::runtime::BatchEvaluator::Options options;
  apply_exec_flags(options, exec);
  options.budget = budget;
  options.engine = engine_options(allow_recursion, parallel_fixpoint);
  // A jobs document may carry engine options shared by every job — e.g.
  // {"options": {"allow_recursion": true}} for specs whose services require
  // fixed-point evaluation.
  if (doc.is_object() && doc.contains("options")) {
    for (const auto& [name, value] : doc.at("options").as_object()) {
      if (name == "allow_recursion") {
        // Either level (document or --allow-recursion flag) can turn it on.
        options.engine.allow_recursion =
            options.engine.allow_recursion || value.as_bool();
      } else if (name == "max_fixpoint_iterations") {
        options.engine.max_fixpoint_iterations =
            static_cast<std::size_t>(value.as_number());
      } else if (name == "shared_memo") {
        // Either level (document or --shared-memo flag) can turn sharing off.
        options.shared_memo = options.shared_memo && value.as_bool();
      } else {
        std::fprintf(stderr, "error: jobs options: unknown key '%s'\n",
                     name.c_str());
        return 1;
      }
    }
  }
  std::uint64_t snap_key = 0;
  if (options.shared_memo) {
    options.shared_cache = snapshot_open(snapshot_path, assembly, snap_key);
  }
  sorel::runtime::BatchEvaluator evaluator(assembly, options);
  const auto results = evaluator.evaluate(jobs);
  snapshot_close(snapshot_path, options.shared_cache, snap_key);

  std::size_t failed = 0;
  std::size_t next_result = 0;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    sorel::json::Object line;
    line["job"] = i;
    if (parsed[i].job) {
      line["service"] = parsed[i].job->service;
      const sorel::runtime::BatchItem& item = results[next_result++];
      if (item.ok) {
        line["pfail"] = item.pfail;
        line["reliability"] = item.reliability;
      } else {
        ++failed;
        line["error"] = item.error_category;
        line["message"] = item.error_message;
        if (item.error_category == "budget_exceeded" ||
            item.error_category == "cancelled") {
          append_guard_fields(line, item.budget_limit, item.evaluations_done,
                              item.states_expanded, item.elapsed_ms);
        }
      }
    } else {
      ++failed;
      line["error"] = parsed[i].error_category;
      line["message"] = parsed[i].error_message;
    }
    std::printf("%s\n", sorel::json::Value(std::move(line)).dump().c_str());
  }
  const auto& stats = evaluator.stats();
  if (emit_stats) {
    // Deliberately no wall-clock field: the line is byte-stable for a given
    // spec + jobs file + thread count (timing stays on stderr).
    sorel::json::Object block;
    block["jobs"] = stats.jobs;
    block["chunks"] = stats.chunks;
    block["failed_jobs"] = stats.failed_jobs + (parsed.size() - jobs.size());
    block["engine_evaluations"] = stats.engine_evaluations;
    block["engine_memo_hits"] = stats.engine_memo_hits;
    block["engine_memo_invalidated"] = stats.engine_memo_invalidated;
    block["shared_memo"] = stats.shared_memo;
    block["shared_hits"] = stats.shared_hits;
    block["shared_misses"] = stats.shared_misses;
    block["shared_cache"] = shared_cache_json(stats.shared_cache_stats);
    sorel::json::Object line;
    line["stats"] = sorel::json::Value(std::move(block));
    std::printf("%s\n", sorel::json::Value(std::move(line)).dump().c_str());
  }
  std::fprintf(stderr,
               "batch: %zu jobs on %zu chunks, %zu failed, %zu evaluations, "
               "%zu memo hits, %zu shared hits, %zu invalidated, %.3fs\n",
               parsed.size(), stats.chunks, failed, stats.engine_evaluations,
               stats.engine_memo_hits, stats.shared_hits,
               stats.engine_memo_invalidated, stats.wall_seconds);
  return failed == 0 ? 0 : 3;
}

int cmd_inject(const sorel::core::Assembly& assembly, const char* campaign_path,
               const sorel::runtime::ExecPolicy& exec,
               const sorel::guard::Budget& budget, bool allow_recursion,
               bool parallel_fixpoint, bool emit_stats,
               const std::string& snapshot_path) {
  const sorel::faults::Campaign campaign =
      sorel::faults::load_campaign_file(campaign_path);

  sorel::faults::CampaignRunner::Options options;
  apply_exec_flags(options, exec);
  options.budget = budget;
  options.engine = engine_options(allow_recursion, parallel_fixpoint);
  std::uint64_t snap_key = 0;
  if (options.shared_memo) {
    options.shared_cache = snapshot_open(snapshot_path, assembly, snap_key);
  }
  sorel::faults::CampaignRunner runner(assembly, options);
  const sorel::faults::CampaignReport report = runner.run(campaign);
  snapshot_close(snapshot_path, options.shared_cache, snap_key);

  for (const sorel::faults::ScenarioOutcome& outcome : report.outcomes) {
    sorel::json::Object line;
    line["scenario"] = outcome.scenario;
    line["name"] = outcome.name;
    if (outcome.ok) {
      line["pfail"] = outcome.pfail;
      line["delta_pfail"] = outcome.delta_pfail;
      line["blast_radius"] = outcome.blast_radius;
      line["evaluations"] = outcome.evaluations;
    } else {
      line["error"] = outcome.error_category;
      line["message"] = outcome.error_message;
      if (outcome.error_category == "budget_exceeded" ||
          outcome.error_category == "cancelled") {
        append_guard_fields(line, outcome.budget_limit,
                            outcome.evaluations_done, outcome.states_expanded,
                            outcome.elapsed_ms);
      }
    }
    std::printf("%s\n", sorel::json::Value(std::move(line)).dump().c_str());
  }

  sorel::json::Object summary;
  summary["baseline_pfail"] = report.baseline_pfail;
  summary["scenarios"] = report.outcomes.size();
  summary["failed"] = report.failed_scenarios;
  sorel::json::Array ranking;
  for (const sorel::faults::FaultCriticality& row : report.criticality) {
    sorel::json::Object entry;
    entry["fault"] = row.fault;
    entry["label"] = row.label;
    entry["max_delta_pfail"] = row.max_delta_pfail;
    entry["mean_delta_pfail"] = row.mean_delta_pfail;
    entry["scenarios"] = row.scenarios;
    ranking.emplace_back(std::move(entry));
  }
  summary["criticality"] = sorel::json::Value(std::move(ranking));
  if (report.frontier_computed) {
    summary["reliability_target"] = campaign.reliability_target;
    summary["survivable_k"] = report.survivable_k;
  }
  std::printf("%s\n", sorel::json::Value(std::move(summary)).dump().c_str());

  if (emit_stats) {
    // No wall-clock field, same as batch: byte-stable per thread count.
    sorel::json::Object block;
    block["scenarios"] = report.outcomes.size();
    block["chunks"] = report.chunks;
    block["failed"] = report.failed_scenarios;
    block["engine_evaluations"] = report.engine_evaluations;
    block["shared_memo"] = report.shared_memo;
    block["shared_hits"] = report.shared_hits;
    block["shared_misses"] = report.shared_misses;
    block["shared_cache"] = shared_cache_json(report.shared_cache_stats);
    sorel::json::Object line;
    line["stats"] = sorel::json::Value(std::move(block));
    std::printf("%s\n", sorel::json::Value(std::move(line)).dump().c_str());
  }
  std::fprintf(stderr,
               "inject: %zu scenarios on %zu chunks, %zu failed, "
               "%zu evaluations, %zu shared hits, %.3fs\n",
               report.outcomes.size(), report.chunks, report.failed_scenarios,
               report.engine_evaluations, report.shared_hits,
               report.wall_seconds);
  return report.failed_scenarios == 0 ? 0 : 3;
}

int cmd_serve(const char* spec_path, const sorel::runtime::ExecPolicy& exec,
              const sorel::guard::Budget& budget, bool allow_recursion,
              bool parallel_fixpoint, const std::optional<ListenTarget>& listen,
              std::size_t max_pending, std::pair<double, double> rate_limit,
              const std::string& snapshot_path, double snapshot_interval_ms) {
  sorel::serve::Server::Options options;
  apply_exec_flags(options, exec);
  options.budget = budget;
  options.engine = engine_options(allow_recursion, parallel_fixpoint);
  options.max_pending = max_pending;
  options.rate_limit_capacity = rate_limit.first;
  options.rate_limit_refill_per_sec = rate_limit.second;
  options.snapshot_path = snapshot_path;
  options.snapshot_interval_ms =
      static_cast<std::uint64_t>(snapshot_interval_ms);

  std::optional<sorel::serve::Server> server;
  if (spec_path != nullptr) {
    server.emplace(sorel::json::parse_file(spec_path), options);
  } else {
    server.emplace(options);  // specless: serves errors until load_spec
  }

  if (listen) {
    std::optional<sorel::serve::TcpListener> listener;
    if (!listen->unix_path.empty()) {
      listener.emplace(*server, listen->unix_path);
      listener->start();
      std::fprintf(stderr, "serve: listening on unix:%s\n",
                   listen->unix_path.c_str());
    } else {
      listener.emplace(*server, listen->host, listen->port);
      listener->start();
      // The announcement is how callers learn an ephemeral (port 0) choice.
      std::fprintf(stderr, "serve: listening on %s:%u\n", listen->host.c_str(),
                   listener->port());
    }
    std::fflush(stderr);
    while (!server->shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    listener->stop();  // drains in-flight requests: zero dropped
    std::fprintf(stderr, "serve: shutdown, %llu requests\n",
                 static_cast<unsigned long long>(server->stats().requests));
  } else {
    const std::size_t requests =
        sorel::serve::run_stdio(*server, std::cin, std::cout);
    std::fprintf(stderr, "serve: %zu requests\n", requests);
  }
  return 0;
}

/// The resilient client: drive a serve daemon from a request file (or
/// stdin), one response line per request on stdout. Transport failures and
/// "overloaded" sheds are retried with exponential backoff + seeded jitter;
/// model errors come back as-is. Exit codes keep the CLI contract: 1 when
/// the transport gave up on any request, 3 when every response arrived but
/// some carried ok=false, 0 when all succeeded.
int cmd_connect(const std::string& target, const char* requests_path,
                const sorel::resil::ClientOptions& client_options) {
  // `unix:/path` targets the daemon's unix-domain socket; anything else is
  // parsed as host:port.
  std::optional<sorel::resil::Client> maybe_client;
  if (target.rfind("unix:", 0) == 0) {
    maybe_client.emplace(target, client_options);
  } else {
    std::string host = "127.0.0.1";
    std::string port_text = target;
    if (const std::size_t colon = target.rfind(':');
        colon != std::string::npos) {
      host = target.substr(0, colon);
      port_text = target.substr(colon + 1);
    }
    char* parse_end = nullptr;
    const long port = std::strtol(port_text.c_str(), &parse_end, 10);
    if (port_text.empty() || *parse_end != '\0' || port <= 0 || port > 65535) {
      return usage_error("connect: not a host:port: '" + target + "'");
    }
    maybe_client.emplace(host, static_cast<std::uint16_t>(port),
                         client_options);
  }

  std::ifstream file;
  if (requests_path != nullptr) {
    file.open(requests_path);
    if (!file) {
      std::fprintf(stderr, "error: connect: cannot open '%s'\n", requests_path);
      return 1;
    }
  }
  std::istream& in = requests_path != nullptr ? file : std::cin;

  sorel::resil::Client& client = *maybe_client;
  std::size_t gave_up = 0;
  std::size_t failed = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const sorel::resil::RequestOutcome outcome = client.call(line);
    if (!outcome.transport_ok) {
      // The server never answered within the retry budget; report a
      // structured line in the same shape as a response so pipelines keep
      // one output line per request.
      ++gave_up;
      sorel::json::Object error;
      error["ok"] = false;
      error["error"] = "transport_error";
      error["message"] = "connect: no response from " + target + " after " +
                         std::to_string(outcome.attempts) + " attempts";
      std::printf("%s\n",
                  sorel::json::Value(std::move(error)).dump().c_str());
    } else {
      if (!outcome.ok) ++failed;
      std::printf("%s\n", outcome.response.c_str());
    }
    std::fflush(stdout);
  }
  const sorel::resil::Client::Stats& stats = client.stats();
  std::fprintf(stderr,
               "connect: %llu requests, %llu retries, %llu reconnects, "
               "%llu overloaded, %llu transport errors, %zu gave up\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.retries),
               static_cast<unsigned long long>(stats.reconnects),
               static_cast<unsigned long long>(stats.overloaded),
               static_cast<unsigned long long>(stats.transport_errors),
               gave_up);
  if (gave_up > 0) return 1;
  return failed == 0 ? 0 : 3;
}

/// List every compiled-in chaos injection site (one `name  description`
/// line). The output is the authoritative inventory: a golden test pins it,
/// so a new Site value that is not documented here fails CI.
int cmd_chaos_sites() {
  for (std::size_t i = 0; i < sorel::resil::kSiteCount; ++i) {
    const auto site = static_cast<sorel::resil::Site>(i);
    std::printf("%-18s %s\n", sorel::resil::site_name(site),
                sorel::resil::site_description(site));
  }
  return 0;
}

int cmd_dot(const sorel::core::Assembly& assembly, const char* service) {
  if (service == nullptr) {
    std::printf("%s", sorel::dsl::assembly_to_dot(assembly).c_str());
  } else {
    std::printf("%s", sorel::dsl::flow_to_dot(*assembly.service(service)).c_str());
  }
  return 0;
}

bool known_command(const std::string& command) {
  static constexpr const char* kCommands[] = {
      "validate", "list",        "evaluate", "modes",  "duration",
      "sensitivity", "importance", "simulate", "select", "rank",
      "merge-shards", "uncertainty",
      "batch",    "inject",      "save",     "dot",    "serve",
      "connect",  "chaos-sites", "version",  "help"};
  for (const char* candidate : kCommands) {
    if (command == candidate) return true;
  }
  return false;
}

int print_version() {
  std::printf("sorel_cli %s (protocol %d)\n", sorel::serve::version_string(),
              sorel::serve::kProtocolVersion);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // GNU-style early outs, valid anywhere on the line.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) return print_version();
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_help(stdout);
      return 0;
    }
  }

  // --threads / --shared-memo / --work-stealing form one execution policy
  // applied uniformly to every analysis through its exec() accessor.
  sorel::runtime::ExecPolicy exec;
  sorel::guard::Budget budget;
  bool emit_stats = false;
  bool allow_recursion = false;
  bool parallel_fixpoint = false;
  std::optional<ListenTarget> listen;
  std::size_t max_pending = 0;
  std::pair<double, double> rate_limit{0.0, 0.0};
  std::string snapshot_path;
  double snapshot_interval_ms = 0.0;
  std::optional<sorel::dist::ShardSpec> shard;
  std::string out_path;
  sorel::resil::ClientOptions client_options;
  try {
    exec.with_threads(extract_threads_flag(argc, argv))
        .with_shared_memo(extract_shared_memo_flag(argc, argv))
        .with_work_stealing(extract_work_stealing_flag(argc, argv));
    budget = extract_budget_flags(argc, argv);
    emit_stats = extract_stats_flag(argc, argv);
    allow_recursion = extract_allow_recursion_flag(argc, argv);
    parallel_fixpoint = extract_parallel_fixpoint_flag(argc, argv);
    listen = extract_listen_flag(argc, argv);
    max_pending = static_cast<std::size_t>(
        extract_number_flag(argc, argv, "--max-pending", 0.0));
    rate_limit = extract_rate_limit_flag(argc, argv);
    snapshot_path = extract_string_flag(argc, argv, "--snapshot");
    snapshot_interval_ms =
        extract_number_flag(argc, argv, "--snapshot-interval", 0.0);
    const std::string shard_text = extract_string_flag(argc, argv, "--shard");
    if (!shard_text.empty()) shard = sorel::dist::parse_shard_spec(shard_text);
    out_path = extract_string_flag(argc, argv, "--out");
    client_options.timeout_ms = extract_number_flag(
        argc, argv, "--timeout-ms", client_options.timeout_ms);
    client_options.max_retries = static_cast<std::size_t>(extract_number_flag(
        argc, argv, "--retries",
        static_cast<double>(client_options.max_retries)));
    client_options.backoff_base_ms = extract_number_flag(
        argc, argv, "--backoff-ms", client_options.backoff_base_ms);
    client_options.seed = static_cast<std::uint64_t>(extract_number_flag(
        argc, argv, "--seed", static_cast<double>(client_options.seed)));
    extract_chaos_flag(argc, argv);
  } catch (const sorel::Error& e) {
    return usage_error(e.what());
  }
  // Everything dash-dash the extractors left behind is an option we do not
  // have — a single-line diagnostic, never a silent positional.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      return usage_error(std::string("unknown option '") + argv[i] + "'");
    }
  }

  if (argc < 2) return usage_error("missing command");
  const std::string command = argv[1];
  if (command == "help") {
    print_help(stdout);
    return 0;
  }
  if (command == "version") return print_version();
  if (!known_command(command)) {
    return usage_error("unknown command '" + command + "'");
  }
  if (command == "chaos-sites") return cmd_chaos_sites();
  if (command == "serve") {
    try {
      return cmd_serve(argc >= 3 ? argv[2] : nullptr, exec, budget,
                       allow_recursion, parallel_fixpoint, listen, max_pending,
                       rate_limit, snapshot_path, snapshot_interval_ms);
    } catch (const sorel::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (command == "connect") {
    if (argc < 3) return usage_error("connect: missing <host:port> operand");
    try {
      return cmd_connect(argv[2], argc >= 4 ? argv[3] : nullptr,
                         client_options);
    } catch (const sorel::InvalidArgument& e) {
      return usage_error(e.what());
    } catch (const sorel::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (command == "merge-shards") {
    if (argc < 3) return usage_error("merge-shards: missing <out.json> operand");
    if (argc < 4) {
      return usage_error("merge-shards: missing <shard report> operand");
    }
    try {
      return cmd_merge_shards(argv[2], argv + 3, argv + argc);
    } catch (const sorel::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (argc < 3) return usage_error(command + ": missing <spec.json> operand");

  try {
    const sorel::json::Value document = sorel::json::parse_file(argv[2]);
    sorel::core::Assembly assembly = sorel::dsl::load_assembly(document);

    if (command == "validate") return cmd_validate(assembly);
    if (command == "list") return cmd_list(assembly);
    if (command == "save") {
      // Canonical form: services/bindings normalised through the model.
      // (Selection/uncertainty sections are analysis inputs, not model
      // state; carry them over verbatim.)
      auto saved = sorel::dsl::save_assembly(assembly);
      if (document.contains("selection")) {
        saved["selection"] = document.at("selection");
      }
      if (document.contains("uncertainty")) {
        saved["uncertainty"] = document.at("uncertainty");
      }
      std::printf("%s\n", saved.dump_pretty().c_str());
      return 0;
    }
    if (command == "dot") {
      return cmd_dot(assembly, argc >= 4 ? argv[3] : nullptr);
    }
    if (argc < 4) {
      if (command == "batch") {
        return usage_error("batch: missing <jobs.json> operand");
      }
      if (command == "inject") {
        return usage_error("inject: missing <campaign.json> operand");
      }
      return usage_error(command + ": missing <service> operand");
    }
    if (command == "batch") {
      return cmd_batch(assembly, argv[3], exec, budget, allow_recursion,
                       parallel_fixpoint, emit_stats, snapshot_path);
    }
    if (command == "inject") {
      return cmd_inject(assembly, argv[3], exec, budget, allow_recursion,
                        parallel_fixpoint, emit_stats, snapshot_path);
    }
    const std::string service = argv[3];

    if (command == "simulate") {
      if (argc < 5) return usage_error("simulate: missing <reps> operand");
      const auto reps = static_cast<std::size_t>(std::atoll(argv[4]));
      return cmd_simulate(assembly, service, reps,
                          parse_args(argv + 5, argv + argc), exec);
    }
    const std::vector<double> args = parse_args(argv + 4, argv + argc);
    if (command == "select" || command == "rank") {
      return cmd_select(assembly, document, service, args, exec,
                        snapshot_path, shard, out_path);
    }
    if (command == "uncertainty") {
      return cmd_uncertainty(assembly, document, service, args, exec);
    }
    if (command == "evaluate") {
      return cmd_evaluate(assembly, service, args, budget, allow_recursion,
                          parallel_fixpoint, snapshot_path);
    }
    if (command == "modes") {
      return cmd_modes(assembly, service, args, budget, allow_recursion,
                       parallel_fixpoint, snapshot_path);
    }
    if (command == "duration") return cmd_duration(assembly, service, args);
    if (command == "sensitivity") {
      return cmd_sensitivity(assembly, service, args, exec);
    }
    if (command == "importance") {
      return cmd_importance(assembly, service, args, exec);
    }
    // Unreachable: known_command() vetted argv[1] before dispatch.
    return usage_error("unknown command '" + command + "'");
  } catch (const sorel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
