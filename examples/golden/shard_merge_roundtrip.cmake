# CLI-level shard/merge round trip:
#
#   cmake -DCLI=<sorel_cli> -DSPEC=<spec.json> -P shard_merge_roundtrip.cmake
#
# Runs the selection space of SPEC's `selection` array twice through the
# worker/coordinator pipeline — once as two `rank --shard k/2` workers,
# once as a single `--shard 1/1` worker — merges each set, and requires the
# two merged reports to agree on everything logical (the documents minus
# the `stats` section, the `shards` worker count, and the `crc64` seal —
# the same projection dist::logical_dump makes). The library-level grid in
# tests/dist proves the full (shards x threads x memo x warmth) matrix;
# this pins the CLI plumbing end to end.
if(NOT CLI OR NOT SPEC)
  message(FATAL_ERROR "shard_merge_roundtrip.cmake needs -DCLI and -DSPEC")
endif()

# Under an ambient SOREL_CHAOS plan (the CI chaos rerun of the dist label)
# injected dist.report_write / dist.report_read faults legitimately abort a
# worker or a merge with a structured refusal; that is the contract — a
# fault may cost the run, never change the ranking. Accept those refusals,
# require identity whenever both pipelines complete.
set(structured "error: (shard report|merged report|merge refused)")

function(run_step out_var)
  execute_process(COMMAND ${CLI} ${ARGN}
                  OUTPUT_VARIABLE out RESULT_VARIABLE code
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    if(DEFINED ENV{SOREL_CHAOS} AND err MATCHES "${structured}")
      message(STATUS "chaos refusal accepted: ${err}")
      set(${out_var} ABORTED PARENT_SCOPE)
      return()
    endif()
    message(FATAL_ERROR "${CLI} ${ARGN} failed (${code}):\n${err}")
  endif()
  set(${out_var} OK PARENT_SCOPE)
endfunction()

set(dir "${CMAKE_CURRENT_BINARY_DIR}")
foreach(name shard_1 shard_2 shard_ref merged merged_ref)
  file(REMOVE "${dir}/cli_${name}.json")
endforeach()

run_step(s1 rank ${SPEC} checkout 5 --shard 1/2 --out ${dir}/cli_shard_1.json)
run_step(s2 rank ${SPEC} checkout 5 --shard 2/2 --out ${dir}/cli_shard_2.json)
run_step(sr rank ${SPEC} checkout 5 --shard 1/1 --out ${dir}/cli_shard_ref.json)
if(s1 STREQUAL "ABORTED" OR s2 STREQUAL "ABORTED" OR sr STREQUAL "ABORTED")
  return()
endif()

run_step(m merge-shards ${dir}/cli_merged.json
         ${dir}/cli_shard_1.json ${dir}/cli_shard_2.json)
run_step(mr merge-shards ${dir}/cli_merged_ref.json ${dir}/cli_shard_ref.json)
if(m STREQUAL "ABORTED" OR mr STREQUAL "ABORTED")
  return()
endif()

# A stale pre-existing merged file surviving a chaos-torn write would be
# indistinguishable from a fresh one here, hence the file(REMOVE) above.
file(READ "${dir}/cli_merged.json" two_way)
file(READ "${dir}/cli_merged_ref.json" one_way)
foreach(text two_way one_way)
  string(REGEX REPLACE "\"crc64\":\"[0-9a-f]+\"" "\"crc64\":<X>"
         ${text} "${${text}}")
  string(REGEX REPLACE "\"shards\":[0-9]+" "\"shards\":<X>"
         ${text} "${${text}}")
  string(REGEX REPLACE "\"stats\":\\{[^}]*\\}" "\"stats\":<X>"
         ${text} "${${text}}")
endforeach()
if(NOT two_way STREQUAL one_way)
  message(FATAL_ERROR "2-way merge deviates logically from the 1-way merge\n"
                      "--- 1-way ---\n${one_way}\n--- 2-way ---\n${two_way}")
endif()

# Coverage refusal sanity: merging only half the space must be a structured
# CoverageGap error, never a partial ranking.
execute_process(COMMAND ${CLI} merge-shards ${dir}/cli_merged_gap.json
                        ${dir}/cli_shard_1.json
                OUTPUT_VARIABLE gap_out RESULT_VARIABLE gap_code
                ERROR_VARIABLE gap_err)
if(gap_code EQUAL 0 OR NOT gap_err MATCHES "coverage_gap")
  message(FATAL_ERROR "half-coverage merge was not refused (${gap_code}):\n"
                      "${gap_err}")
endif()
