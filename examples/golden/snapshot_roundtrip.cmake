# CLI-level snapshot round trip:
#
#   cmake -DCLI=<sorel_cli> -DSPEC=<spec.json> -P snapshot_roundtrip.cmake
#
# Runs `evaluate --snapshot` twice against a fresh temp file. The cold run
# populates the snapshot; the warm run must (a) report the byte-identical
# Pfail/reliability lines, (b) do zero physical evaluations (everything
# replays from the table), and (c) a corrupted snapshot must degrade to a
# cold start whose result lines still match — never a wrong answer.
if(NOT CLI OR NOT SPEC)
  message(FATAL_ERROR "snapshot_roundtrip.cmake needs -DCLI and -DSPEC")
endif()

# Under an ambient SOREL_CHAOS plan (the CI chaos rerun of the snap label)
# injected fs.* faults legitimately suppress saves and warm starts, so the
# strict warm-path assertions are skipped; the result-identity assertions —
# a snapshot can make a run cheaper, never different — stay unconditional.
if(DEFINED ENV{SOREL_CHAOS})
  set(strict FALSE)
else()
  set(strict TRUE)
endif()

set(snap "${CMAKE_CURRENT_BINARY_DIR}/cli_roundtrip.snap")
file(REMOVE "${snap}")

execute_process(
  COMMAND ${CLI} --snapshot ${snap} evaluate ${SPEC} stream_session 90
  OUTPUT_VARIABLE cold_out RESULT_VARIABLE cold_code ERROR_VARIABLE cold_err)
if(NOT cold_code EQUAL 0)
  message(FATAL_ERROR "cold run failed (${cold_code}):\n${cold_err}")
endif()
if(strict AND NOT EXISTS "${snap}")
  message(FATAL_ERROR "cold run did not write ${snap}:\n${cold_err}")
endif()

execute_process(
  COMMAND ${CLI} --snapshot ${snap} evaluate ${SPEC} stream_session 90
  OUTPUT_VARIABLE warm_out RESULT_VARIABLE warm_code ERROR_VARIABLE warm_err)
if(NOT warm_code EQUAL 0)
  message(FATAL_ERROR "warm run failed (${warm_code}):\n${warm_err}")
endif()
if(strict AND NOT warm_err MATCHES "snapshot: warm start")
  message(FATAL_ERROR "warm run did not load the snapshot:\n${warm_err}")
endif()
if(strict AND NOT warm_out MATCHES "evaluations = 0 ")
  message(FATAL_ERROR "warm run still evaluated physically:\n${warm_out}")
endif()

# The result lines (everything except the evaluations counter, which is the
# point of the warm start) must be byte-identical cold vs warm.
string(REGEX REPLACE "evaluations = [^\n]*" "evaluations = <N>"
       cold_norm "${cold_out}")
string(REGEX REPLACE "evaluations = [^\n]*" "evaluations = <N>"
       warm_norm "${warm_out}")
if(NOT cold_norm STREQUAL warm_norm)
  message(FATAL_ERROR "warm result deviates from cold:\n"
                      "--- cold ---\n${cold_out}\n--- warm ---\n${warm_out}")
endif()

# Corrupt the snapshot (flip one payload byte): the next run must reject it
# with a structured reason, fall back to a cold start, and still produce the
# identical result lines. (If chaos suppressed every save there is no file
# to corrupt — the differential above already covered the chaos path.)
if(NOT EXISTS "${snap}")
  return()
endif()
file(READ "${snap}" image HEX)
string(LENGTH "${image}" hexlen)
math(EXPR flip_at "200")
string(SUBSTRING "${image}" 0 ${flip_at} prefix)
math(EXPR rest_at "${flip_at} + 2")
math(EXPR rest_len "${hexlen} - ${rest_at}")
string(SUBSTRING "${image}" ${rest_at} ${rest_len} suffix)
set(corrupt_hex "${prefix}fe${suffix}")
string(SUBSTRING "${image}" ${flip_at} 2 original_byte)
if(original_byte STREQUAL "fe")
  set(corrupt_hex "${prefix}01${suffix}")
endif()
# Write the corrupted image back via a generated-file round trip.
set(corrupt_file "${snap}")
file(REMOVE "${corrupt_file}")
# CMake cannot write raw bytes directly; decode the hex string.
string(REGEX MATCHALL ".." pairs "${corrupt_hex}")
set(bytes "")
foreach(pair ${pairs})
  string(APPEND bytes "\\x${pair}")
endforeach()
execute_process(COMMAND printf "${bytes}" OUTPUT_FILE "${corrupt_file}"
                RESULT_VARIABLE printf_code)
if(NOT printf_code EQUAL 0)
  message(FATAL_ERROR "could not write corrupted snapshot")
endif()

execute_process(
  COMMAND ${CLI} --snapshot ${snap} evaluate ${SPEC} stream_session 90
  OUTPUT_VARIABLE corrupt_out RESULT_VARIABLE corrupt_code
  ERROR_VARIABLE corrupt_err)
if(NOT corrupt_code EQUAL 0)
  message(FATAL_ERROR "corrupted-snapshot run failed (${corrupt_code}):\n"
                      "${corrupt_err}")
endif()
if(NOT corrupt_err MATCHES "snapshot: cold start")
  message(FATAL_ERROR "corrupted snapshot was not rejected:\n${corrupt_err}")
endif()
string(REGEX REPLACE "evaluations = [^\n]*" "evaluations = <N>"
       corrupt_norm "${corrupt_out}")
if(NOT corrupt_norm STREQUAL cold_norm)
  message(FATAL_ERROR "corrupted-snapshot cold start deviates:\n"
                      "--- expected ---\n${cold_out}\n"
                      "--- actual ---\n${corrupt_out}")
endif()
