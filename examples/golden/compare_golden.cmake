# Golden-output comparison for CLI regression tests.
#
#   cmake -DCLI=<sorel_cli> "-DARGS=<space-separated args>" \
#         -DGOLDEN=<expected-output file> \
#         [-DINPUT_FILE=<stdin file>] [-DEXPECT_EXIT=<code>] \
#         [-DSTREAM=stdout|stderr] -P compare_golden.cmake
#
# Runs the CLI, normalizes any timing fields on both sides (result lines are
# timing-free by design, but a future field must not turn every golden test
# into a flake), and fails with a diff-style message on the first deviation.
# The same golden file is used with --shared-memo=on and off and with
# several --threads values: byte-identical output across the whole grid is
# the CLI-level determinism contract of the shared memo table.
#
# INPUT_FILE feeds the process on stdin (the serve front end reads request
# lines there). EXPECT_EXIT pins the exit status (default 0) — usage-error
# goldens pin 2. STREAM selects which stream the golden file describes
# (default stdout; usage errors are a single stderr line).
if(NOT CLI OR NOT GOLDEN OR NOT DEFINED ARGS)
  message(FATAL_ERROR "compare_golden.cmake needs -DCLI, -DARGS and -DGOLDEN")
endif()
if(NOT DEFINED EXPECT_EXIT)
  set(EXPECT_EXIT 0)
endif()
if(NOT DEFINED STREAM)
  set(STREAM stdout)
endif()

separate_arguments(cli_args UNIX_COMMAND "${ARGS}")
set(run_options "")
if(INPUT_FILE)
  list(APPEND run_options INPUT_FILE "${INPUT_FILE}")
endif()
execute_process(
  COMMAND ${CLI} ${cli_args}
  ${run_options}
  OUTPUT_VARIABLE stdout_text
  RESULT_VARIABLE exit_code
  ERROR_VARIABLE stderr_text)
if(NOT exit_code EQUAL ${EXPECT_EXIT})
  message(FATAL_ERROR "${CLI} ${ARGS} exited with ${exit_code} "
                      "(expected ${EXPECT_EXIT}):\n${stderr_text}")
endif()

if(STREAM STREQUAL "stderr")
  set(actual "${stderr_text}")
else()
  set(actual "${stdout_text}")
endif()

file(READ "${GOLDEN}" expected)

# Timing normalization: replace wall-clock-ish JSON fields with a fixed
# token before comparing.
foreach(field wall_seconds elapsed_ms seconds wall_ms)
  string(REGEX REPLACE "\"${field}\":[0-9.eE+-]+" "\"${field}\":<T>"
         actual "${actual}")
  string(REGEX REPLACE "\"${field}\":[0-9.eE+-]+" "\"${field}\":<T>"
         expected "${expected}")
endforeach()

if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "${STREAM} of `${CLI} ${ARGS}` deviates from ${GOLDEN}\n"
                      "--- expected ---\n${expected}\n"
                      "--- actual ---\n${actual}")
endif()
