# Golden-stdout comparison for CLI regression tests.
#
#   cmake -DCLI=<sorel_cli> "-DARGS=<space-separated args>" \
#         -DGOLDEN=<expected-stdout file> -P compare_golden.cmake
#
# Runs the CLI, normalizes any timing fields on both sides (result lines are
# timing-free by design, but a future field must not turn every golden test
# into a flake), and fails with a diff-style message on the first deviation.
# The same golden file is used with --shared-memo=on and off and with
# several --threads values: byte-identical output across the whole grid is
# the CLI-level determinism contract of the shared memo table.
if(NOT CLI OR NOT GOLDEN OR NOT DEFINED ARGS)
  message(FATAL_ERROR "compare_golden.cmake needs -DCLI, -DARGS and -DGOLDEN")
endif()

separate_arguments(cli_args UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${CLI} ${cli_args}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE exit_code
  ERROR_VARIABLE stderr_text)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "${CLI} ${ARGS} exited with ${exit_code}:\n${stderr_text}")
endif()

file(READ "${GOLDEN}" expected)

# Timing normalization: replace wall-clock-ish JSON fields with a fixed
# token before comparing.
foreach(field wall_seconds elapsed_ms seconds wall_ms)
  string(REGEX REPLACE "\"${field}\":[0-9.eE+-]+" "\"${field}\":<T>"
         actual "${actual}")
  string(REGEX REPLACE "\"${field}\":[0-9.eE+-]+" "\"${field}\":<T>"
         expected "${expected}")
endforeach()

if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "stdout of `${CLI} ${ARGS}` deviates from ${GOLDEN}\n"
                      "--- expected ---\n${expected}\n"
                      "--- actual ---\n${actual}")
endif()
