// Load an assembly from its machine-processable JSON description (the
// analytic-interface embedding the paper's section 5 calls for), evaluate
// it, and emit GraphViz renderings of the wiring and the root service's
// flow.
//
// Run: ./dsl_assembly [path/to/spec.json [service arg...]]
// Default: the video-transcoding pipeline spec shipped in examples/specs/.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sorel/core/engine.hpp"
#include "sorel/dsl/dot.hpp"
#include "sorel/dsl/loader.hpp"
#include "sorel/util/error.hpp"

int main(int argc, char** argv) {
  std::string path = SOREL_EXAMPLE_SPEC_DIR "/video_pipeline.json";
  std::string service = "stream_session";
  std::vector<double> args{90.0};  // a 90-minute session

  if (argc >= 2) path = argv[1];
  if (argc >= 3) {
    service = argv[2];
    args.clear();
    for (int i = 3; i < argc; ++i) args.push_back(std::atof(argv[i]));
  }

  try {
    sorel::core::Assembly assembly = sorel::dsl::load_assembly_file(path);
    std::printf("loaded %zu services from %s\n",
                assembly.service_names().size(), path.c_str());
    for (const std::string& name : assembly.service_names()) {
      const auto& svc = assembly.service(name);
      std::printf("  %-16s %s, %zu formals\n", name.c_str(),
                  svc->is_simple() ? "simple   " : "composite", svc->arity());
    }

    sorel::core::ReliabilityEngine engine(assembly);
    std::printf("\nPfail(%s", service.c_str());
    for (const double a : args) std::printf(", %g", a);
    std::printf(") = %.10f\n", engine.pfail(service, args));
    std::printf("reliability        = %.10f\n", engine.reliability(service, args));

    // Round-trip through the serialiser to show the spec is a faithful
    // interchange format.
    const auto saved = sorel::dsl::save_assembly(assembly);
    sorel::core::Assembly reloaded = sorel::dsl::load_assembly(saved);
    sorel::core::ReliabilityEngine engine2(reloaded);
    std::printf("after save/load    = %.10f (must match)\n",
                engine2.reliability(service, args));

    std::printf("\n--- assembly wiring (GraphViz) ---\n%s",
                sorel::dsl::assembly_to_dot(assembly, service).c_str());
    std::printf("\n--- flow of '%s' (GraphViz) ---\n%s", service.c_str(),
                sorel::dsl::flow_to_dot(*assembly.service(service)).c_str());
  } catch (const sorel::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
