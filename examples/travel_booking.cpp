// A service-oriented travel-booking application, built from scratch with the
// public API. Demonstrates the model features beyond the paper's running
// example:
//   - OR-redundancy over multiple quote providers;
//   - the sharing dependency model: three "redundant" providers deployed
//     behind one shared gateway are much weaker than three independent ones
//     (the paper's section 3.2 observation, at application scale);
//   - k-of-n completion (quorum pricing);
//   - connectors with parametric payloads.
//
// Run: ./travel_booking
#include <cstdio>
#include <memory>

#include "sorel/core/connectors.hpp"
#include "sorel/core/engine.hpp"
#include "sorel/core/service.hpp"

namespace core = sorel::core;
using core::Assembly;
using core::CompletionModel;
using core::CompositeService;
using core::DependencyModel;
using core::FlowGraph;
using core::FlowState;
using core::FormalParam;
using core::InternalFailure;
using core::PortBinding;
using core::ServiceRequest;
using sorel::expr::Expr;

namespace {

enum class QuoteTopology { kIndependentProviders, kSharedGateway };

/// The booking front-end: quote (redundant), then reserve flight+hotel in
/// parallel (AND), then pay. One formal parameter: the request payload size.
core::ServicePtr make_booking_service(QuoteTopology topology) {
  const Expr payload = Expr::var("payload");

  FlowGraph flow;

  // --- quote state: 3-way redundancy -------------------------------------
  FlowState quote;
  quote.name = "quote";
  quote.completion = CompletionModel::kOr;  // any provider's quote suffices
  for (int i = 0; i < 3; ++i) {
    ServiceRequest r;
    // Independent topology: three distinct ports, bound to three providers.
    // Shared topology: one port, three requests through the same gateway.
    r.port = topology == QuoteTopology::kIndependentProviders
                 ? "quote" + std::to_string(i)
                 : "quote";
    r.actuals = {payload};
    r.label = "price request " + std::to_string(i);
    quote.requests.push_back(std::move(r));
  }
  if (topology == QuoteTopology::kSharedGateway) {
    quote.dependency = DependencyModel::kSharing;
  }
  const auto quote_id = flow.add_state(std::move(quote));

  // --- reserve state: flight AND hotel ------------------------------------
  FlowState reserve;
  reserve.name = "reserve";
  reserve.completion = CompletionModel::kAnd;
  for (const char* port : {"flight", "hotel"}) {
    ServiceRequest r;
    r.port = port;
    r.actuals = {payload * 2.0};  // reservations carry itinerary details
    r.label = std::string(port) + " reservation";
    reserve.requests.push_back(std::move(r));
  }
  const auto reserve_id = flow.add_state(std::move(reserve));

  // --- payment state -------------------------------------------------------
  FlowState pay;
  pay.name = "pay";
  ServiceRequest payment;
  payment.port = "payment";
  payment.actuals = {payload};
  payment.label = "charge card";
  pay.requests.push_back(std::move(payment));
  const auto pay_id = flow.add_state(std::move(pay));

  // 10% of sessions are quote-only (the user walks away before reserving).
  flow.add_transition(FlowGraph::kStart, quote_id, Expr::constant(1.0));
  flow.add_transition(quote_id, reserve_id, Expr::constant(0.9));
  flow.add_transition(quote_id, FlowGraph::kEnd, Expr::constant(0.1));
  flow.add_transition(reserve_id, pay_id, Expr::constant(1.0));
  flow.add_transition(pay_id, FlowGraph::kEnd, Expr::constant(1.0));

  return std::make_shared<CompositeService>(
      "book_trip", std::vector<FormalParam>{{"payload", "request size (bytes)"}},
      std::move(flow));
}

/// A quote provider as a black-box simple service: published unreliability
/// grows with payload size (per-byte processing on flaky spot instances).
core::ServicePtr make_provider(const std::string& name, double per_byte_rate) {
  return core::make_simple_service(
      name, {"B"}, 1.0 - exp(-(Expr::constant(per_byte_rate) * Expr::var("B"))));
}

Assembly build(QuoteTopology topology) {
  Assembly a;
  a.add_service(make_booking_service(topology));
  a.add_service(core::make_network_service("wan", /*bandwidth=*/1e4,
                                           /*failure_rate=*/2e-2));
  a.add_service(core::make_cpu_service("frontend_cpu", 1e9, 1e-10));
  a.add_service(core::make_cpu_service("backend_cpu", 1e9, 1e-10));
  a.add_service(core::make_rpc_connector("rpc", /*ops_per_byte=*/3.0,
                                         /*bytes_per_byte=*/1.0));
  a.bind("rpc", "cpu_client", {.target = "frontend_cpu", .connector = {}, .connector_actuals = {}});
  a.bind("rpc", "cpu_server", {.target = "backend_cpu", .connector = {}, .connector_actuals = {}});
  a.bind("rpc", "net", {.target = "wan", .connector = {}, .connector_actuals = {}});

  const auto rpc_binding = [](const std::string& target) {
    PortBinding b;
    b.target = target;
    b.connector = "rpc";
    // Connector payload: the request actual in both directions.
    b.connector_actuals = {Expr::var("arg0"), Expr::var("arg0")};
    return b;
  };

  if (topology == QuoteTopology::kIndependentProviders) {
    for (int i = 0; i < 3; ++i) {
      const std::string name = "provider" + std::to_string(i);
      a.add_service(make_provider(name, 3e-5));
      a.bind("book_trip", "quote" + std::to_string(i), rpc_binding(name));
    }
  } else {
    a.add_service(make_provider("gateway", 3e-5));
    a.bind("book_trip", "quote", rpc_binding("gateway"));
  }

  a.add_service(make_provider("airline", 1e-5));
  a.add_service(make_provider("hotel_chain", 2e-5));
  a.add_service(make_provider("card_processor", 5e-6));
  a.bind("book_trip", "flight", rpc_binding("airline"));
  a.bind("book_trip", "hotel", rpc_binding("hotel_chain"));
  a.bind("book_trip", "payment", rpc_binding("card_processor"));
  return a;
}

}  // namespace

int main() {
  std::printf("travel booking: OR-redundant quotes, AND reservations, payment\n\n");
  std::printf("%-10s %-22s %-22s %s\n", "payload", "R(independent quotes)",
              "R(shared gateway)", "redundancy lost to sharing");

  for (const double payload : {128.0, 512.0, 2048.0, 8192.0}) {
    Assembly independent = build(QuoteTopology::kIndependentProviders);
    Assembly shared = build(QuoteTopology::kSharedGateway);
    core::ReliabilityEngine independent_engine(independent);
    core::ReliabilityEngine shared_engine(shared);
    const double ri = independent_engine.reliability("book_trip", {payload});
    const double rs = shared_engine.reliability("book_trip", {payload});
    std::printf("%-10g %-22.8f %-22.8f %.2e\n", payload, ri, rs, ri - rs);
  }

  std::printf(
      "\nThree providers behind one shared gateway+transport are barely\n"
      "better than one: a shared external failure defeats every 'replica'\n"
      "at once (the paper's OR/sharing result, eq. 12).\n");
  return 0;
}
