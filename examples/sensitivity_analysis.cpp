// Which component or attribute should be improved to raise assembly
// reliability the most? Runs the sensitivity and importance analyses on the
// paper's remote assembly — the automated version of the selection decision
// the paper motivates in its introduction.
//
// Run: ./sensitivity_analysis
#include <cstdio>

#include "sorel/core/engine.hpp"
#include "sorel/core/sensitivity.hpp"
#include "sorel/scenarios/search_sort.hpp"

int main() {
  using sorel::scenarios::AssemblyKind;
  using sorel::scenarios::SearchSortParams;

  SearchSortParams params;
  params.gamma = 2.5e-2;  // a mediocre network
  sorel::core::Assembly assembly =
      build_search_assembly(AssemblyKind::kRemote, params);
  const std::vector<double> args{params.elem_size, 5000.0, params.result_size};

  sorel::core::ReliabilityEngine engine(assembly);
  std::printf("remote search assembly, list size 5000\n");
  std::printf("baseline reliability: %.8f\n\n", engine.reliability("search", args));

  // --- attribute sensitivities ---------------------------------------------
  std::printf("attribute sensitivities (dR/da, ranked):\n");
  std::printf("%-16s %-14s %-14s %s\n", "attribute", "value", "dR/da",
              "elasticity");
  const auto sensitivities = sorel::core::attribute_sensitivities(
      assembly, "search", args,
      {"net12.beta", "net12.b", "cpu1.lambda", "cpu2.lambda", "sort2.phi",
       "search.phi", "search.q", "rpc.m"});
  for (const auto& s : sensitivities) {
    std::printf("%-16s %-14.4g %-14.6g %.6g\n", s.attribute.c_str(), s.value,
                s.derivative, s.elasticity);
  }

  // --- component importances -------------------------------------------------
  std::printf("\ncomponent importances (Birnbaum, ranked):\n");
  std::printf("%-12s %-14s %s\n", "component", "Birnbaum", "risk-achievement");
  const auto importances = sorel::core::component_importances(
      assembly, "search", args,
      {"sort2", "rpc", "net12", "cpu1", "cpu2", "loc1", "loc2"});
  for (const auto& imp : importances) {
    std::printf("%-12s %-14.6g %.4g\n", imp.component.c_str(), imp.birnbaum,
                imp.risk_achievement);
  }

  // --- a what-if: halve the network failure rate -----------------------------
  sorel::core::Assembly improved =
      build_search_assembly(AssemblyKind::kRemote, params);
  improved.set_attribute("net12.beta", params.gamma / 2.0);
  sorel::core::ReliabilityEngine improved_engine(improved);
  std::printf("\nwhat-if net12.beta halved: R = %.8f (was %.8f)\n",
              improved_engine.reliability("search", args),
              engine.reliability("search", args));
  return 0;
}
