// Validate the analytic engine against Monte-Carlo simulation on the paper's
// example: for each configuration, the analytic prediction must fall inside
// the simulator's 95% confidence interval. Also reports the cost ratio —
// the point of the paper's *analytic* approach is that it is exact and
// orders of magnitude cheaper than simulating.
//
// Run: ./simulation_validation [replications]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "sorel/core/engine.hpp"
#include "sorel/scenarios/search_sort.hpp"
#include "sorel/sim/simulator.hpp"

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  using sorel::scenarios::AssemblyKind;
  using sorel::scenarios::SearchSortParams;

  std::size_t replications = 200'000;
  if (argc >= 2) replications = static_cast<std::size_t>(std::atoll(argv[1]));

  std::printf("analytic engine vs Monte-Carlo (%zu replications per point)\n\n",
              replications);
  std::printf("%-8s %-8s %-8s %-12s %-24s %s\n", "kind", "gamma", "list",
              "analytic R", "simulated R [95%% CI]", "inside");

  int total = 0;
  int covered = 0;
  double analytic_us = 0.0;
  double simulated_us = 0.0;

  for (const auto kind : {AssemblyKind::kLocal, AssemblyKind::kRemote}) {
    for (const double gamma : {1e-1, 5e-3}) {
      SearchSortParams p;
      p.gamma = gamma;
      // Inflate software rates so failures are observable at feasible
      // replication counts.
      p.phi_sort1 = 1e-4;
      p.phi_sort2 = 1e-5;
      p.phi_search = 1e-5;
      sorel::core::Assembly assembly = build_search_assembly(kind, p);

      for (const double list : {100.0, 1000.0}) {
        const std::vector<double> args{p.elem_size, list, p.result_size};

        const auto t0 = Clock::now();
        sorel::core::ReliabilityEngine engine(assembly);
        const double analytic = engine.reliability("search", args);
        const auto t1 = Clock::now();

        sorel::sim::Simulator simulator(assembly);
        sorel::sim::SimulationOptions options;
        options.replications = replications;
        options.seed = 0xC0FFEE;
        const auto result = simulator.estimate("search", args, options);
        const auto t2 = Clock::now();

        analytic_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
        simulated_us += std::chrono::duration<double, std::micro>(t2 - t1).count();

        const auto ci = result.confidence_interval();
        const bool inside = analytic >= ci.lower && analytic <= ci.upper;
        ++total;
        covered += inside ? 1 : 0;
        std::printf("%-8s %-8.3g %-8g %-12.6f %.6f [%.6f, %.6f] %s\n",
                    kind == AssemblyKind::kLocal ? "local" : "remote", gamma, list,
                    analytic, result.reliability(), ci.lower, ci.upper,
                    inside ? "yes" : "NO");
      }
    }
  }

  std::printf("\n%d/%d analytic predictions inside the simulation CI\n", covered,
              total);
  std::printf("total analytic time: %.1f us, total simulation time: %.0f us "
              "(x%.0f more)\n",
              analytic_us, simulated_us, simulated_us / analytic_us);
  return covered == total ? 0 : 1;
}
